(** Experiment F3 — paper Fig 3: XOR3 realizations on 3 x 4 and (minimum
    size) 3 x 3 lattices, plus the generic dual-based synthesis for
    comparison. *)

type result = {
  lattice_3x3_valid : bool;
  lattice_3x4_valid : bool;
  altun_riedel_rows : int;
  altun_riedel_cols : int;
  altun_riedel_valid : bool;
  min_size_found : (int * int) option;  (** exhaustive-search minimum (with constants) *)
}

(** [run ?search ()] validates the library lattices; with [search = true]
    (default false — it enumerates ~10^7 grids) the exhaustive synthesizer
    re-derives the minimum size. *)
val run : ?search:bool -> unit -> result

val report : ?search:bool -> unit -> Report.t
