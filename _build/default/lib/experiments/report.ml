type row = { id : string; metric : string; paper : string; measured : string; note : string }

type t = { title : string; rows : row list; body : string }

let row ~id ~metric ~paper ~measured ?(note = "") () = { id; metric; paper; measured; note }

let fmt_f x = if Float.is_nan x then "-" else Printf.sprintf "%.4g" x

let row_f ~id ~metric ~paper ~measured ?note () =
  row ~id ~metric ~paper:(fmt_f paper) ~measured:(fmt_f measured) ?note ()

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  if t.rows <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-8s %-34s %14s %14s  %s\n" "id" "metric" "paper" "measured" "note");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%-8s %-34s %14s %14s  %s\n" r.id r.metric r.paper r.measured r.note))
      t.rows
  end;
  if t.body <> "" then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf t.body;
    if not (String.length t.body > 0 && t.body.[String.length t.body - 1] = '\n') then
      Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
