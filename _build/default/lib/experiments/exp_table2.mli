(** Experiment T2 — paper Table II: structural features of the
    four-terminal devices used for the TCAD simulations. *)

val report : unit -> Report.t
