module D = Lattice_device

type case_result = { name : string; currents : float array; total_drain : float }

type result = {
  cases : case_result list;
  symmetry_groups : (string list * float) list;
  symmetry_holds : bool;
}

(* rotating a case by 90 degrees permutes the terminals cyclically *)
let rotate (c : D.Op_case.t) = Array.init 4 (fun i -> c.((i + 3) mod 4))

let canonical_key c =
  let rec rotations acc c k = if k = 0 then acc else rotations (c :: acc) (rotate c) (k - 1) in
  let all = rotations [] c 4 in
  List.fold_left
    (fun best r ->
      let s = D.Op_case.to_string r in
      match best with Some b when b <= s -> best | Some _ | None -> Some s)
    None all
  |> Option.get

let run ?(shape = D.Geometry.Square) () =
  let v = D.Presets.find ~shape ~dielectric:D.Material.HfO2 in
  let cases =
    List.map
      (fun case ->
        let currents = D.Device_model.terminal_currents v.D.Presets.model ~case ~vgs:5.0 ~vds:5.0 in
        let total_drain =
          Array.fold_left (fun acc i -> if i > 0.0 then acc +. i else acc) 0.0 currents
        in
        { name = D.Op_case.to_string case; currents; total_drain })
      D.Op_case.all
  in
  (* group rotation-equivalent cases; within a group the square device's
     4-fold symmetry makes the drain totals... only adjacent/opposite
     distinction matters, which rotations preserve *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun cr ->
      let key = canonical_key (D.Op_case.of_string cr.name) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (cr :: existing))
    cases;
  let symmetry_groups =
    Hashtbl.fold
      (fun _ members acc ->
        (List.map (fun cr -> cr.name) members, (List.hd members).total_drain) :: acc)
      groups []
  in
  let symmetry_holds =
    Hashtbl.fold
      (fun _ members ok ->
        ok
        && List.for_all
             (fun cr -> Float.abs (cr.total_drain -. (List.hd members).total_drain) < 1e-15)
             members)
      groups true
  in
  { cases; symmetry_groups; symmetry_holds }

let report ?shape () =
  let r = run ?shape () in
  let rows =
    [
      Report.row ~id:"SecIIIB" ~metric:"16 operating cases evaluated" ~paper:"16"
        ~measured:(string_of_int (List.length r.cases)) ();
      Report.row ~id:"SecIIIB" ~metric:"symmetric cases correlate" ~paper:"'good correlations'"
        ~measured:(if r.symmetry_holds then "exact" else "NO")
        ~note:"rotation-equivalent cases give identical drain currents" ();
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "case   I(T1)        I(T2)        I(T3)        I(T4)       drain total (A)\n";
  List.iter
    (fun cr ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %11.4g  %11.4g  %11.4g  %11.4g  %11.4g\n" cr.name cr.currents.(0)
           cr.currents.(1) cr.currents.(2) cr.currents.(3) cr.total_drain))
    r.cases;
  {
    Report.title = "Section III-B: the 16 drain/source cases (square, HfO2, VGS = VDS = 5 V)";
    rows;
    body = Buffer.contents buf;
  }
