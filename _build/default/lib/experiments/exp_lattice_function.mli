(** Experiment F2 — paper Fig 2c: the 3 x 3 lattice function (9 products
    over x1..x9). *)

type result = {
  products : string list;  (** e.g. ["x1x4x7"; ...] in enumeration order *)
  matches_paper : bool;
}

(** The products exactly as listed in Fig 2c. *)
val paper_products : string list

val run : unit -> result
val report : unit -> Report.t
