module S = Lattice_synthesis

type result = {
  lattice_3x3_valid : bool;
  lattice_3x4_valid : bool;
  altun_riedel_rows : int;
  altun_riedel_cols : int;
  altun_riedel_valid : bool;
  min_size_found : (int * int) option;
}

let run ?(search = false) () =
  let xor3 = S.Library.xor3 in
  let ar = S.Altun_riedel.synthesize xor3 in
  let min_size_found =
    if search then
      Option.map
        (fun (_, r, c) -> (r, c))
        (S.Exhaustive.minimal ~alphabet:S.Exhaustive.Literals_and_constants ~max_area:9 xor3)
    else None
  in
  {
    lattice_3x3_valid = S.Validate.realizes S.Library.xor3_3x3 xor3;
    lattice_3x4_valid = S.Validate.realizes S.Library.xor3_3x4 xor3;
    altun_riedel_rows = ar.S.Altun_riedel.grid.Lattice_core.Grid.rows;
    altun_riedel_cols = ar.S.Altun_riedel.grid.Lattice_core.Grid.cols;
    altun_riedel_valid = S.Validate.realizes ar.S.Altun_riedel.grid xor3;
    min_size_found;
  }

let report ?search () =
  let r = run ?search () in
  let names = S.Library.abc_names in
  let yesno b = if b then "yes" else "NO" in
  let rows =
    [
      Report.row ~id:"Fig3b" ~metric:"3x3 XOR3 lattice realizes XOR3" ~paper:"yes"
        ~measured:(yesno r.lattice_3x3_valid) ();
      Report.row ~id:"Fig3a" ~metric:"3x4 XOR3 lattice realizes XOR3" ~paper:"yes"
        ~measured:(yesno r.lattice_3x4_valid) ();
      Report.row ~id:"Fig3" ~metric:"dual-based (Altun-Riedel) size" ~paper:"4x4 (self-dual)"
        ~measured:(Printf.sprintf "%dx%d%s" r.altun_riedel_rows r.altun_riedel_cols
             (if r.altun_riedel_valid then "" else " INVALID"))
        ();
      (let e, _ = Lattice_boolfn.Expr.parse "a ^ b ^ c" in
       let g = Lattice_core.Compose.of_expr e in
       Report.row ~id:"Fig3" ~metric:"compositional (ref [2]) size" ~paper:"-"
         ~measured:(Printf.sprintf "%dx%d%s" g.Lattice_core.Grid.rows g.Lattice_core.Grid.cols
              (if S.Validate.realizes g S.Library.xor3 then "" else " INVALID"))
         ~note:"structural, no truth table needed" ());
    ]
    @
    match r.min_size_found with
    | None -> []
    | Some (rr, cc) ->
      [
        Report.row ~id:"Fig3b" ~metric:"exhaustive-search minimum size" ~paper:"3x3"
          ~measured:(Printf.sprintf "%dx%d" rr cc) ();
      ]
  in
  let body =
    Printf.sprintf "Fig 3b (3x3, minimum):\n%s\n\nFig 3a (3x4):\n%s\n"
      (Lattice_core.Grid.to_string ~names S.Library.xor3_3x3)
      (Lattice_core.Grid.to_string ~names S.Library.xor3_3x4)
  in
  { Report.title = "Fig 3: XOR3 on switching lattices"; rows; body }
