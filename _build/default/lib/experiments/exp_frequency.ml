module Sp = Lattice_spice
module Lib = Lattice_synthesis.Library

type style_metrics = {
  f3db_hz : float option;
  f3db_low_hz : float option;
  phase_at_f3db_deg : float;
  cycle_energy_j : float;
}

type result = {
  resistor : style_metrics;
  complementary : style_metrics;
  bandwidth_gain : float;
}

let vdd = 1.2

let build style ~stimulus =
  match style with
  | `Resistor -> Sp.Lattice_circuit.build Lib.xor3_3x3 ~stimulus
  | `Complementary ->
    Sp.Lattice_circuit.build_complementary ~pull_up:Lib.xnor3_3x3 ~pull_down:Lib.xor3_3x3
      ~stimulus ()

let bandwidth style ~state =
  (* state `High: all inputs 0, output held high (weakly, through the
     n-type pull-up in the complementary case); state `Low: a = 1, output
     held low through the conducting pull-down *)
  let stimulus v =
    match state with
    | `High -> Sp.Source.Dc 0.0
    | `Low -> Sp.Source.Dc (if v = 0 then vdd else 0.0)
  in
  let lc = build style ~stimulus in
  let response =
    Sp.Ac.sweep lc.Sp.Lattice_circuit.netlist ~source:"VDD" ~output:"out" ~f_start:1e4
      ~f_stop:1e10 ~points_per_decade:10
  in
  (Sp.Ac.f_3db response, response)

let run_style ?(bit_time = 100e-9) style =
  let f3db_hz, response = bandwidth style ~state:`High in
  let f3db_low_hz, _ = bandwidth style ~state:`Low in
  let phase_at_f3db_deg =
    match f3db_hz with Some f -> Sp.Ac.phase_at response f | None -> nan
  in

  (* dynamic energy over the full 8-combination cycle *)
  let lc =
    build style ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd ~bit_time)
  in
  let r =
    Sp.Transient.run lc.Sp.Lattice_circuit.netlist ~h:0.5e-9 ~t_stop:(8.0 *. bit_time)
      ~record:[] ~record_currents:[ "VDD" ] ()
  in
  let i_vdd = Sp.Transient.branch_current r "VDD" in
  {
    f3db_hz;
    f3db_low_hz;
    phase_at_f3db_deg;
    cycle_energy_j = Sp.Measure.energy_from_supply ~vdd r.Sp.Transient.times i_vdd;
  }

let run ?bit_time () =
  let resistor = run_style ?bit_time `Resistor in
  let complementary = run_style ?bit_time `Complementary in
  let bandwidth_gain =
    match (resistor.f3db_hz, complementary.f3db_hz) with
    | Some a, Some b -> b /. a
    | Some _, None | None, Some _ | None, None -> nan
  in
  { resistor; complementary; bandwidth_gain }

let report () =
  let r = run () in
  let mhz = function Some f -> Printf.sprintf "%.3g" (f /. 1e6) | None -> "-" in
  let rows =
    [
      Report.row ~id:"ExtVIa" ~metric:"output-pole f3dB, resistor load, MHz"
        ~paper:"('maximum frequency' planned)" ~measured:(mhz r.resistor.f3db_hz) ();
      Report.row ~id:"ExtVIa" ~metric:"output-pole f3dB, complementary, MHz" ~paper:"-"
        ~measured:(mhz r.complementary.f3db_hz) ();
      Report.row_f ~id:"ExtVIa" ~metric:"bandwidth gain, x" ~paper:nan
        ~measured:r.bandwidth_gain
        ~note:"high state: n-type pull-up is weak near V_OH" ();
      Report.row ~id:"ExtVIa" ~metric:"low-state f3dB res -> compl., MHz" ~paper:"-"
        ~measured:(Printf.sprintf "%s -> %s" (mhz r.resistor.f3db_low_hz)
             (mhz r.complementary.f3db_low_hz))
        ~note:"both strongly driven when low" ();
      Report.row_f ~id:"ExtVIa" ~metric:"phase at f3dB, resistor, deg" ~paper:nan
        ~measured:r.resistor.phase_at_f3db_deg ();
      Report.row_f ~id:"ExtVIa" ~metric:"energy / 8-combo cycle, resistor, pJ" ~paper:nan
        ~measured:(r.resistor.cycle_energy_j *. 1e12) ();
      Report.row_f ~id:"ExtVIa" ~metric:"energy / 8-combo cycle, complementary, pJ" ~paper:nan
        ~measured:(r.complementary.cycle_energy_j *. 1e12) ();
    ]
  in
  {
    Report.title = "Extension (paper Sec VI-A): maximum frequency and dynamic energy";
    rows;
    body = "";
  }
