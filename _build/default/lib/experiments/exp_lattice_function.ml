type result = { products : string list; matches_paper : bool }

let paper_products =
  [
    "x1x4x7"; "x2x5x8"; "x3x6x9";
    "x1x4x5x8"; "x2x5x4x7"; "x2x5x6x9"; "x3x6x5x8";
    "x1x4x5x6x9"; "x3x6x5x4x7";
  ]

let normalize p =
  (* order-insensitive comparison of a product's variable set *)
  let vars = String.split_on_char 'x' p |> List.filter (fun s -> s <> "") in
  List.sort compare vars

let run () =
  let products = Lattice_core.Lattice_function.product_strings ~rows:3 ~cols:3 in
  let matches_paper =
    List.sort compare (List.map normalize products)
    = List.sort compare (List.map normalize paper_products)
  in
  { products; matches_paper }

let report () =
  let r = run () in
  {
    Report.title = "Fig 2c: the 3 x 3 lattice function";
    rows =
      [
        Report.row ~id:"Fig2c" ~metric:"product count" ~paper:"9"
          ~measured:(string_of_int (List.length r.products)) ();
        Report.row ~id:"Fig2c" ~metric:"products match the printed list"
          ~paper:"yes"
          ~measured:(if r.matches_paper then "yes" else "NO")
          ();
      ];
    body = "f(3x3) = " ^ String.concat " + " r.products;
  }
