(** Automated design tool for switching lattices (paper Section VI-A:
    "developing an automated design tool for switching lattices performing
    performance optimization. With given area, power, delay, and energy
    specifications, the tool would come up with optimized solutions").

    For a target Boolean function the tool
    + generates candidate lattices (dual-based synthesis of the function
      and of its complement — the latter with an inverted output — plus an
      exhaustive minimum-size search when small enough),
    + evaluates area, worst-case delay and mean static power, analytically
      by default or through the SPICE engine on request, and
    + ranks the candidates against a user specification.

    The circuit template is the paper's: resistor pull-up, four-terminal
    switch pull-down (output inverted), VDD = 1.2 V. *)

type implementation = {
  grid : Lattice_core.Grid.t;
  inverted : bool;
      (** [true] when the lattice realizes the complement, so the circuit's
          (already inverted) output equals the target itself *)
  method_name : string;  (** e.g. ["dual-based"], ["exhaustive"] *)
}

type metrics = {
  area : int;  (** switches *)
  delay : float;  (** worst of rise/fall, s *)
  rise : float;
  fall : float;
  static_power : float;  (** mean over all input states, W *)
  from_spice : bool;
}

type evaluated = {
  implementation : implementation;
  metrics : metrics;
  feasible : bool;  (** meets every bound of the spec *)
  score : float;  (** lower is better *)
}

type spec = {
  max_area : int option;
  max_delay : float option;  (** s *)
  max_static_power : float option;  (** W *)
  weight_area : float;
  weight_delay : float;
  weight_power : float;
}

(** No bounds; equal weights. *)
val default_spec : spec

(** [candidates target] generates the implementation candidates.
    [max_exhaustive_area] (default 6) caps the exhaustive search; when
    [expr] is given a compositional candidate ([Lattice_core.Compose]) is
    added. *)
val candidates :
  ?max_exhaustive_area:int ->
  ?expr:Lattice_boolfn.Expr.t ->
  Lattice_boolfn.Truthtable.t ->
  implementation list

(** [estimate ?config impl] computes analytic metrics from the switch
    on-conductance, the plate capacitances and the truth-table duty
    factor. *)
val estimate : ?config:Lattice_spice.Lattice_circuit.config -> implementation -> metrics

(** [evaluate_spice ?config target impl] measures the metrics with the
    circuit simulator: DC supply power per input state and a full
    all-combinations transient for the edges. Requires at most 5 target
    variables. *)
val evaluate_spice :
  ?config:Lattice_spice.Lattice_circuit.config ->
  Lattice_boolfn.Truthtable.t ->
  implementation ->
  metrics

(** [optimize ?spec ?use_spice ?config target] generates, evaluates and
    ranks. Feasible candidates come first, each group sorted by weighted
    score. All candidates are validated to realize [target] (with output
    inversion accounted for). *)
val optimize :
  ?spec:spec ->
  ?use_spice:bool ->
  ?config:Lattice_spice.Lattice_circuit.config ->
  ?expr:Lattice_boolfn.Expr.t ->
  Lattice_boolfn.Truthtable.t ->
  evaluated list

(** [describe e ~names] renders one candidate for the CLI. *)
val describe : evaluated -> names:(int -> string) -> string
