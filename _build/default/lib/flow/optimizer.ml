module Tt = Lattice_boolfn.Truthtable
module Grid = Lattice_core.Grid
module S = Lattice_synthesis
module Sp = Lattice_spice
module L1 = Lattice_mosfet.Level1

type implementation = { grid : Grid.t; inverted : bool; method_name : string }

type metrics = {
  area : int;
  delay : float;
  rise : float;
  fall : float;
  static_power : float;
  from_spice : bool;
}

type evaluated = {
  implementation : implementation;
  metrics : metrics;
  feasible : bool;
  score : float;
}

type spec = {
  max_area : int option;
  max_delay : float option;
  max_static_power : float option;
  weight_area : float;
  weight_delay : float;
  weight_power : float;
}

let default_spec =
  {
    max_area = None;
    max_delay = None;
    max_static_power = None;
    weight_area = 1.0;
    weight_delay = 1.0;
    weight_power = 1.0;
  }

let candidates ?(max_exhaustive_area = 6) ?expr target =
  let direct = { grid = (S.Altun_riedel.synthesize target).S.Altun_riedel.grid;
                 inverted = false; method_name = "dual-based" } in
  let complement =
    {
      grid = (S.Altun_riedel.synthesize (Tt.complement target)).S.Altun_riedel.grid;
      inverted = true;
      method_name = "dual-based (complement, inverted out)";
    }
  in
  let composed =
    match expr with
    | None -> []
    | Some e ->
      [ { grid = Lattice_core.Compose.of_expr e; inverted = false; method_name = "composition" } ]
  in
  let exhaustive =
    if Tt.nvars target <= 4 then
      match
        S.Exhaustive.minimal ~alphabet:S.Exhaustive.Literals_and_constants
          ~max_area:max_exhaustive_area target
      with
      | Some (grid, _, _) -> [ { grid; inverted = false; method_name = "exhaustive" } ]
      | None -> []
    else []
  in
  (* drop duplicates by dimensions + method redundancy: keep everything;
     dedup by grid content *)
  let key impl = (impl.grid.Grid.rows, impl.grid.Grid.cols, impl.grid.Grid.entries, impl.inverted) in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun impl ->
      let k = key impl in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    ([ direct; complement ] @ composed @ exhaustive)

(* N-S on-conductance of one switch at vgs = vdd: the type-B diagonal in
   parallel with the two-step type-A edge path *)
let switch_on_conductance (config : Sp.Lattice_circuit.config) =
  let vdd = config.Sp.Lattice_circuit.vdd in
  let g_of m = Lattice_mosfet.Model.on_conductance m ~vdd in
  let ga = g_of config.Sp.Lattice_circuit.types.Sp.Fts.type_a in
  let gb = g_of config.Sp.Lattice_circuit.types.Sp.Fts.type_b in
  gb +. (ga /. 2.0)

(* fraction of input states in which the pull-down conducts *)
let duty grid =
  let nvars = Int.max 1 (Grid.nvars grid) in
  let states = 1 lsl nvars in
  let on = ref 0 in
  for m = 0 to states - 1 do
    if Lattice_core.Connectivity.eval grid m then incr on
  done;
  float_of_int !on /. float_of_int states

let estimate ?(config = Sp.Lattice_circuit.default_config) impl =
  let grid = impl.grid in
  let rows = grid.Grid.rows and cols = grid.Grid.cols in
  let r_on_chain = float_of_int rows /. switch_on_conductance config in
  let c_out =
    config.Sp.Lattice_circuit.output_cap
    +. (float_of_int cols *. config.Sp.Lattice_circuit.terminal_cap)
  in
  (* 10-90% edges of first-order RC responses *)
  let rise = 2.2 *. config.Sp.Lattice_circuit.pullup_ohms *. c_out in
  let fall = 2.2 *. r_on_chain *. c_out in
  let vdd = config.Sp.Lattice_circuit.vdd in
  let static_power =
    duty grid *. vdd *. vdd /. (config.Sp.Lattice_circuit.pullup_ohms +. r_on_chain)
  in
  {
    area = Grid.size grid;
    delay = Float.max rise fall;
    rise;
    fall;
    static_power;
    from_spice = false;
  }

let evaluate_spice ?(config = Sp.Lattice_circuit.default_config) target impl =
  let nvars = Tt.nvars target in
  if nvars > 5 then invalid_arg "Optimizer.evaluate_spice: too many inputs";
  let vdd = config.Sp.Lattice_circuit.vdd in
  (* static power per input state at DC *)
  let states = 1 lsl nvars in
  let powers =
    Array.init states (fun m ->
        let stimulus v = Sp.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
        let lc = Sp.Lattice_circuit.build ~config impl.grid ~stimulus in
        let x = Sp.Dcop.solve lc.Sp.Lattice_circuit.netlist in
        match Sp.Netlist.vsource_index lc.Sp.Lattice_circuit.netlist "VDD" with
        | Some idx -> -.x.(Sp.Netlist.vsource_row lc.Sp.Lattice_circuit.netlist idx) *. vdd
        | None -> assert false)
  in
  (* transient over every combination for the edges *)
  let bit_time = 80e-9 in
  let lc =
    Sp.Lattice_circuit.build ~config impl.grid
      ~stimulus:(Sp.Lattice_circuit.exhaustive_stimulus ~vdd ~bit_time)
  in
  let r =
    Sp.Transient.run lc.Sp.Lattice_circuit.netlist ~h:0.5e-9
      ~t_stop:(float_of_int states *. bit_time)
      ~record:[ lc.Sp.Lattice_circuit.output_node ] ()
  in
  let out = Sp.Transient.signal r lc.Sp.Lattice_circuit.output_node in
  let v_low, v_high = Sp.Measure.steady_levels r.Sp.Transient.times out ~settle:(bit_time /. 4.0) in
  let with_default d = function Some x -> x | None -> d in
  let est = estimate ~config impl in
  let rise = with_default est.rise (Sp.Measure.rise_time r.Sp.Transient.times out ~low:v_low ~high:v_high) in
  let fall = with_default est.fall (Sp.Measure.fall_time r.Sp.Transient.times out ~low:v_low ~high:v_high) in
  {
    area = Grid.size impl.grid;
    delay = Float.max rise fall;
    rise;
    fall;
    static_power = Lattice_numerics.Stats.mean powers;
    from_spice = true;
  }

let meets_bound bound value = match bound with None -> true | Some b -> value <= b

let optimize ?(spec = default_spec) ?(use_spice = false) ?config ?expr target =
  let impls = candidates ?expr target in
  (* validate every candidate before evaluating it *)
  List.iter
    (fun impl ->
      let effective = if impl.inverted then Tt.complement target else target in
      if not (S.Validate.realizes impl.grid effective) then
        failwith ("Optimizer: candidate does not realize the target: " ^ impl.method_name))
    impls;
  let evaluated =
    List.map
      (fun impl ->
        let metrics =
          if use_spice then evaluate_spice ?config target impl else estimate ?config impl
        in
        let feasible =
          meets_bound spec.max_area metrics.area
          && meets_bound spec.max_delay metrics.delay
          && meets_bound spec.max_static_power metrics.static_power
        in
        (impl, metrics, feasible))
      impls
  in
  (* normalize each axis by the best candidate so weights are comparable *)
  let min_over f =
    List.fold_left (fun acc (_, m, _) -> Float.min acc (f m)) infinity evaluated
  in
  let a0 = min_over (fun m -> float_of_int m.area) in
  let d0 = min_over (fun m -> m.delay) in
  let p0 = min_over (fun m -> m.static_power) in
  let norm base v = if base <= 0.0 then 1.0 else v /. base in
  let scored =
    List.map
      (fun (impl, m, feasible) ->
        let score =
          (spec.weight_area *. norm a0 (float_of_int m.area))
          +. (spec.weight_delay *. norm d0 m.delay)
          +. (spec.weight_power *. norm p0 m.static_power)
        in
        { implementation = impl; metrics = m; feasible; score })
      evaluated
  in
  List.sort
    (fun a b ->
      match (a.feasible, b.feasible) with
      | true, false -> -1
      | false, true -> 1
      | true, true | false, false -> Float.compare a.score b.score)
    scored

let describe e ~names =
  let m = e.metrics in
  let impl = e.implementation in
  Printf.sprintf
    "%-36s %dx%d area=%d%s  delay=%.3gns (r %.3g / f %.3g)  P_static=%.3guW  %s score=%.3f\n%s"
    impl.method_name impl.grid.Grid.rows impl.grid.Grid.cols m.area
    (if impl.inverted then " (inverted out)" else "")
    (m.delay *. 1e9) (m.rise *. 1e9) (m.fall *. 1e9) (m.static_power *. 1e6)
    (if e.feasible then "feasible" else "INFEASIBLE")
    e.score
    (Grid.to_string ~names impl.grid)
