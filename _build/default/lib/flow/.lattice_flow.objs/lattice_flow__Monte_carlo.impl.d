lib/flow/monte_carlo.ml: Array Bool Float Lattice_boolfn Lattice_core Lattice_mosfet Lattice_numerics Lattice_spice Random
