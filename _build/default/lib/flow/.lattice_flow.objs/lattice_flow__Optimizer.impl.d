lib/flow/optimizer.ml: Array Float Hashtbl Int Lattice_boolfn Lattice_core Lattice_mosfet Lattice_numerics Lattice_spice Lattice_synthesis List Printf
