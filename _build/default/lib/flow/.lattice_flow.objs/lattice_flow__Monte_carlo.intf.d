lib/flow/monte_carlo.mli: Lattice_boolfn Lattice_core Lattice_spice
