lib/flow/optimizer.mli: Lattice_boolfn Lattice_core Lattice_spice
