(** Level-1 MOSFET parameter extraction (paper Section IV / Fig 10).

    The paper fits the TCAD data of the square device to the level-1
    equations with the MATLAB Curve Fitting Toolbox, extracting [Kp], [Vth]
    and [lambda], and models the device as six MOSFETs of two types that
    differ only in effective length (Type A 0.35 um for adjacent terminal
    pairs, Type B 0.5 um for opposite pairs).

    Here the two sweep scenarios the paper describes are generated from the
    compact device model in the DSSS case:

    + scenario 1 — 5 V on T1, 0 V on T2..T4, VGS swept 0..5 V;
    + scenario 2 — VGS = 5 V, VDS swept 0..5 V on T1;

    and the drain current is fitted jointly over both sweeps by
    Levenberg-Marquardt against the DSSS composite (two Type A channels and
    one Type B channel in parallel, sharing [Kp], [Vth], [lambda]). *)

type scenario = {
  name : string;
  bias : [ `Sweep_vgs of float  (** fixed VDS *) | `Sweep_vds of float  (** fixed VGS *) ];
  xs : float array;  (** swept voltage, V *)
  ys : float array;  (** T1 drain current, A *)
}

(** [scenario1 model ~points] / [scenario2 model ~points] generate the two
    sweeps from the compact model. *)
val scenario1 : Lattice_device.Device_model.t -> points:int -> scenario

val scenario2 : Lattice_device.Device_model.t -> points:int -> scenario

type extraction = {
  kp : float;
  vth : float;
  lambda : float;
  rmse : float;  (** over all fitted samples, A *)
  r_squared : float;
  iterations : int;
  converged : bool;
  type_a : Lattice_mosfet.Level1.params;  (** adjacent pairs, L = 0.35 um *)
  type_b : Lattice_mosfet.Level1.params;  (** opposite pairs, L = 0.5 um *)
}

(** [composite_current ~geometry ~kp ~vth ~lambda ~vgs ~vds] is the DSSS
    composite drain current (2 x Type A + 1 x Type B). *)
val composite_current :
  geometry:Lattice_device.Geometry.t ->
  kp:float ->
  vth:float ->
  lambda:float ->
  vgs:float ->
  vds:float ->
  float

(** [extract ?scenarios model] runs the joint fit (default scenarios:
    [scenario1] and [scenario2] with 51 points). *)
val extract : ?scenarios:scenario list -> Lattice_device.Device_model.t -> extraction

(** [predict e ~geometry scenario] evaluates the fitted composite over a
    scenario's sweep (for Fig 10-style overlays). *)
val predict : extraction -> geometry:Lattice_device.Geometry.t -> scenario -> float array
