lib/fitting/fit.ml: Array Float Lattice_device Lattice_mosfet Lattice_numerics List
