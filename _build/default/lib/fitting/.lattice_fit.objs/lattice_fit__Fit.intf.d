lib/fitting/fit.mli: Lattice_device Lattice_mosfet
