module Level1 = Lattice_mosfet.Level1
module Device_model = Lattice_device.Device_model
module Geometry = Lattice_device.Geometry
module Op_case = Lattice_device.Op_case

type scenario = {
  name : string;
  bias : [ `Sweep_vgs of float | `Sweep_vds of float ];
  xs : float array;
  ys : float array;
}

let drain_current model ~vgs ~vds =
  let i = Device_model.terminal_currents model ~case:Op_case.dsss ~vgs ~vds in
  i.(0)

let scenario1 model ~points =
  let xs = Lattice_numerics.Vec.linspace 0.0 5.0 points in
  {
    name = "scenario 1 (VDS = 5 V, sweep VGS)";
    bias = `Sweep_vgs 5.0;
    xs;
    ys = Array.map (fun vgs -> drain_current model ~vgs ~vds:5.0) xs;
  }

let scenario2 model ~points =
  let xs = Lattice_numerics.Vec.linspace 0.0 5.0 points in
  {
    name = "scenario 2 (VGS = 5 V, sweep VDS)";
    bias = `Sweep_vds 5.0;
    xs;
    ys = Array.map (fun vds -> drain_current model ~vgs:5.0 ~vds) xs;
  }

type extraction = {
  kp : float;
  vth : float;
  lambda : float;
  rmse : float;
  r_squared : float;
  iterations : int;
  converged : bool;
  type_a : Level1.params;
  type_b : Level1.params;
}

let params_of ~geometry ~kp ~vth ~lambda ~opposite =
  {
    Level1.kp;
    vth;
    lambda;
    w = geometry.Geometry.channel_width;
    l = (if opposite then geometry.Geometry.l_opposite else geometry.Geometry.l_adjacent);
  }

let composite_current ~geometry ~kp ~vth ~lambda ~vgs ~vds =
  let pa = params_of ~geometry ~kp ~vth ~lambda ~opposite:false in
  let pb = params_of ~geometry ~kp ~vth ~lambda ~opposite:true in
  (2.0 *. Level1.ids pa ~vgs ~vds) +. Level1.ids pb ~vgs ~vds

let bias_point scenario x =
  match scenario.bias with
  | `Sweep_vgs vds -> (x, vds)
  | `Sweep_vds vgs -> (vgs, x)

let extract ?scenarios model =
  let scenarios =
    match scenarios with
    | Some s -> s
    | None -> [ scenario1 model ~points:51; scenario2 model ~points:51 ]
  in
  let geometry = model.Device_model.geometry in
  let samples =
    List.concat_map
      (fun sc -> Array.to_list (Array.mapi (fun i x -> (bias_point sc x, sc.ys.(i))) sc.xs))
      scenarios
  in
  let observed = Array.of_list (List.map snd samples) in
  (* normalize residuals by the current scale so LM tolerances behave *)
  let scale = Float.max 1e-12 (Array.fold_left Float.max 0.0 (Array.map Float.abs observed)) in
  let residuals p =
    let kp = Float.abs p.(0) and vth = p.(1) and lambda = Float.abs p.(2) in
    Array.of_list
      (List.map
         (fun ((vgs, vds), y) ->
           (composite_current ~geometry ~kp ~vth ~lambda ~vgs ~vds -. y) /. scale)
         samples)
  in
  let x0 = [| 1e-5; 0.5; 0.01 |] in
  let lm = Lattice_numerics.Optimize.levenberg_marquardt ~residuals ~x0 ~max_iter:400 () in
  let kp = Float.abs lm.Lattice_numerics.Optimize.params.(0) in
  let vth = lm.Lattice_numerics.Optimize.params.(1) in
  let lambda = Float.abs lm.Lattice_numerics.Optimize.params.(2) in
  let predicted =
    Array.of_list
      (List.map (fun ((vgs, vds), _) -> composite_current ~geometry ~kp ~vth ~lambda ~vgs ~vds) samples)
  in
  {
    kp;
    vth;
    lambda;
    rmse = Lattice_numerics.Stats.rmse observed predicted;
    r_squared = Lattice_numerics.Stats.r_squared observed predicted;
    iterations = lm.Lattice_numerics.Optimize.iterations;
    converged = lm.Lattice_numerics.Optimize.converged;
    type_a = params_of ~geometry ~kp ~vth ~lambda ~opposite:false;
    type_b = params_of ~geometry ~kp ~vth ~lambda ~opposite:true;
  }

let predict e ~geometry scenario =
  Array.map
    (fun x ->
      let vgs, vds = bias_point scenario x in
      composite_current ~geometry ~kp:e.kp ~vth:e.vth ~lambda:e.lambda ~vgs ~vds)
    scenario.xs
