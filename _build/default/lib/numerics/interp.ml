let check xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Interp: empty input";
  if n <> Array.length ys then invalid_arg "Interp: length mismatch"

let lookup xs ys x =
  check xs ys;
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the bracketing segment *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = xs.(!lo) and x1 = xs.(!hi) in
    if x1 = x0 then ys.(!lo)
    else
      let t = (x -. x0) /. (x1 -. x0) in
      ys.(!lo) +. (t *. (ys.(!hi) -. ys.(!lo)))
  end

let crossings xs ys level =
  check xs ys;
  let n = Array.length xs in
  let out = ref [] in
  let last_hit = ref neg_infinity in
  let push x =
    if x > !last_hit then begin
      out := x :: !out;
      last_hit := x
    end
  in
  for i = 0 to n - 2 do
    let y0 = ys.(i) -. level and y1 = ys.(i + 1) -. level in
    if y0 = 0.0 then push xs.(i)
    else if (y0 < 0.0 && y1 > 0.0) || (y0 > 0.0 && y1 < 0.0) then begin
      let t = y0 /. (y0 -. y1) in
      push (xs.(i) +. (t *. (xs.(i + 1) -. xs.(i))))
    end
  done;
  if n >= 2 && ys.(n - 1) = level then push xs.(n - 1);
  if n = 1 && ys.(0) = level then push xs.(0);
  List.rev !out

let first_crossing xs ys level =
  match crossings xs ys level with [] -> None | x :: _ -> Some x

let first_crossing_after xs ys ~after level =
  let rec find = function
    | [] -> None
    | x :: rest -> if x > after then Some x else find rest
  in
  find (crossings xs ys level)

let bisect f lo hi ~tol =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then invalid_arg "Interp.bisect: no sign change in bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    0.5 *. (!lo +. !hi)
  end
