(** Summary statistics and fit-quality metrics. *)

(** [mean v] is the arithmetic mean; raises [Invalid_argument] on empty
    input. *)
val mean : float array -> float

(** [variance v] is the population variance (divide by [n]). *)
val variance : float array -> float

(** [stddev v] is [sqrt (variance v)]. *)
val stddev : float array -> float

(** [rmse observed predicted] is the root-mean-square error between two
    equal-length sample arrays. *)
val rmse : float array -> float array -> float

(** [max_abs_error observed predicted] is the worst-case absolute error. *)
val max_abs_error : float array -> float array -> float

(** [r_squared observed predicted] is the coefficient of determination;
    1.0 is a perfect fit. Returns [nan] when the observations have zero
    variance. *)
val r_squared : float array -> float array -> float

(** [linear_regression xs ys] is [(slope, intercept)] of the least-squares
    line through the points. Requires at least two samples with distinct
    [xs]. *)
val linear_regression : float array -> float array -> float * float

(** [relative_error ~expected actual] is [|actual - expected| / |expected|];
    [|actual|] when [expected = 0]. *)
val relative_error : expected:float -> float -> float
