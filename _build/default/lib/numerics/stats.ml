let mean v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 v /. float_of_int n

let variance v =
  let m = mean v in
  let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 v in
  acc /. float_of_int (Array.length v)

let stddev v = sqrt (variance v)

let check_pair name a b =
  if Array.length a <> Array.length b then invalid_arg ("Stats." ^ name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let rmse observed predicted =
  check_pair "rmse" observed predicted;
  let acc = ref 0.0 in
  for i = 0 to Array.length observed - 1 do
    let d = observed.(i) -. predicted.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int (Array.length observed))

let max_abs_error observed predicted =
  check_pair "max_abs_error" observed predicted;
  let m = ref 0.0 in
  for i = 0 to Array.length observed - 1 do
    m := Float.max !m (Float.abs (observed.(i) -. predicted.(i)))
  done;
  !m

let r_squared observed predicted =
  check_pair "r_squared" observed predicted;
  let m = mean observed in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to Array.length observed - 1 do
    let dt = observed.(i) -. m in
    let dr = observed.(i) -. predicted.(i) in
    ss_tot := !ss_tot +. (dt *. dt);
    ss_res := !ss_res +. (dr *. dr)
  done;
  if !ss_tot = 0.0 then nan else 1.0 -. (!ss_res /. !ss_tot)

let linear_regression xs ys =
  check_pair "linear_regression" xs ys;
  if Array.length xs < 2 then invalid_arg "Stats.linear_regression: need >= 2 samples";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let dx = xs.(i) -. mx in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. (ys.(i) -. my))
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_regression: xs are constant";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let relative_error ~expected actual =
  if expected = 0.0 then Float.abs actual
  else Float.abs (actual -. expected) /. Float.abs expected
