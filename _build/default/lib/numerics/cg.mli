(** Matrix-free conjugate-gradient solver for symmetric positive-definite
    operators.

    Used by the 2-D field solver ([Lattice_device.Field2d]) where the
    five-point Laplacian is applied on the fly rather than assembled. *)

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

(** [solve ~apply ~b ?x0 ?tol ?max_iter ()] solves [A x = b] where
    [apply x out] writes [A x] into [out]. The operator must be symmetric
    positive definite for convergence guarantees.

    @param x0 initial guess (defaults to zero)
    @param tol relative residual target on [||r|| / ||b||] (default [1e-10])
    @param max_iter iteration cap (default [4 * length b]) *)
val solve :
  apply:(Vec.t -> Vec.t -> unit) ->
  b:Vec.t ->
  ?x0:Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
