type t = float array

let create n x = Array.make n x
let zeros n = Array.make n 0.0
let init = Array.init
let copy = Array.copy

let check_same_length name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let dot a b =
  check_same_length "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let axpy alpha x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale alpha v = Array.map (fun x -> alpha *. x) v

let add a b =
  check_same_length "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same_length "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 v

let max_abs_diff a b =
  check_same_length "max_abs_diff" a b;
  let m = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least 2 points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let map = Array.map

let pp fmt v =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.6g" x)
    v;
  Format.fprintf fmt "]"
