(** Derivative-free and least-squares optimizers.

    [nelder_mead] is the robust general-purpose minimizer;
    [levenberg_marquardt] is the least-squares fitter used for the level-1
    MOSFET parameter extraction (the role MATLAB's Curve Fitting Toolbox
    plays in the paper). *)

type nm_result = {
  x : Vec.t;  (** best point found *)
  fx : float;  (** objective value at [x] *)
  iterations : int;
  converged : bool;
}

(** [nelder_mead f x0 ?scale ?tol ?max_iter ()] minimizes [f] starting from
    the simplex around [x0] with per-coordinate initial steps [scale]
    (default: 10% of each coordinate, or 0.1 for zero coordinates).
    Convergence: simplex function-value spread below [tol]
    (default [1e-12]). *)
val nelder_mead :
  (Vec.t -> float) ->
  Vec.t ->
  ?scale:Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  nm_result

type lm_result = {
  params : Vec.t;  (** fitted parameters *)
  rmse : float;  (** root-mean-square residual at the solution *)
  iterations : int;
  converged : bool;
}

(** [levenberg_marquardt ~residuals ~x0 ?tol ?max_iter ?lambda0 ()]
    minimizes [0.5 * ||residuals x||^2]. The Jacobian is formed by forward
    differences. Damping starts at [lambda0] (default [1e-3]) and adapts by
    factors of 10. Convergence: relative decrease of the cost below [tol]
    (default [1e-12]) with an accepted step, or a gradient that small. *)
val levenberg_marquardt :
  residuals:(Vec.t -> Vec.t) ->
  x0:Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?lambda0:float ->
  unit ->
  lm_result
