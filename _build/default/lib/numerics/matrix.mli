(** Dense row-major matrices of floats.

    The representation is a flat [float array] with explicit row and column
    counts, which keeps the circuit-simulator inner loops allocation-free. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, [data.(r * cols + c)] *)
}

(** [create rows cols] is a zero matrix. *)
val create : int -> int -> t

(** [identity n] is the [n x n] identity. *)
val identity : int -> t

(** [init rows cols f] fills entry [(r, c)] with [f r c]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [get m r c] reads entry [(r, c)]. No bounds checking beyond the
    underlying array's. *)
val get : t -> int -> int -> float

(** [set m r c x] writes entry [(r, c)]. *)
val set : t -> int -> int -> float -> unit

(** [add_to m r c x] adds [x] to entry [(r, c)]; the MNA stamping
    primitive. *)
val add_to : t -> int -> int -> float -> unit

(** [fill m x] sets every entry to [x]. *)
val fill : t -> float -> unit

(** [mat_vec m v] is the product [m * v] as a fresh vector. *)
val mat_vec : t -> Vec.t -> Vec.t

(** [mat_mul a b] is the product [a * b] as a fresh matrix. *)
val mat_mul : t -> t -> t

(** [transpose m] is a fresh transpose. *)
val transpose : t -> t

(** [of_rows rows] builds a matrix from a non-empty list of equal-length
    rows. *)
val of_rows : float array list -> t

(** [pp] formats the matrix one row per line with aligned columns. *)
val pp : Format.formatter -> t -> unit
