type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let init rows cols f =
  let m = create rows cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      m.data.((r * cols) + c) <- f r c
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }
let get m r c = m.data.((r * m.cols) + c)
let set m r c x = m.data.((r * m.cols) + c) <- x
let add_to m r c x = m.data.((r * m.cols) + c) <- m.data.((r * m.cols) + c) +. x
let fill m x = Array.fill m.data 0 (Array.length m.data) x

let mat_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mat_vec: size mismatch";
  let out = Array.make m.rows 0.0 in
  for r = 0 to m.rows - 1 do
    let base = r * m.cols in
    let acc = ref 0.0 in
    for c = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + c) *. v.(c))
    done;
    out.(r) <- !acc
  done;
  out

let mat_mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mat_mul: size mismatch";
  let out = create a.rows b.cols in
  for r = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((r * a.cols) + k) in
      if aik <> 0.0 then
        let bbase = k * b.cols in
        let obase = r * b.cols in
        for c = 0 to b.cols - 1 do
          out.data.(obase + c) <- out.data.(obase + c) +. (aik *. b.data.(bbase + c))
        done
    done
  done;
  out

let transpose m = init m.cols m.rows (fun r c -> get m c r)

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | first :: _ ->
    let cols = Array.length first in
    let nrows = List.length rows in
    let m = create nrows cols in
    List.iteri
      (fun r row ->
        if Array.length row <> cols then invalid_arg "Matrix.of_rows: ragged rows";
        Array.blit row 0 m.data (r * cols) cols)
      rows;
    m

let pp fmt m =
  for r = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for c = 0 to m.cols - 1 do
      if c > 0 then Format.fprintf fmt "  ";
      Format.fprintf fmt "%10.4g" (get m r c)
    done;
    Format.fprintf fmt "]";
    if r < m.rows - 1 then Format.fprintf fmt "@\n"
  done
