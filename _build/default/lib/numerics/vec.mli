(** Dense vectors of floats.

    Thin wrappers around [float array] used throughout the numerical code.
    All binary operations require operands of equal length and raise
    [Invalid_argument] otherwise. *)

type t = float array

(** [create n x] is a vector of length [n] filled with [x]. *)
val create : int -> float -> t

(** [zeros n] is the zero vector of length [n]. *)
val zeros : int -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [copy v] is a fresh copy of [v]. *)
val copy : t -> t

(** [dot a b] is the inner product of [a] and [b]. *)
val dot : t -> t -> float

(** [axpy alpha x y] overwrites [y] with [alpha *. x + y] in place. *)
val axpy : float -> t -> t -> unit

(** [scale alpha v] is a fresh vector [alpha *. v]. *)
val scale : float -> t -> t

(** [add a b] is the element-wise sum as a fresh vector. *)
val add : t -> t -> t

(** [sub a b] is the element-wise difference as a fresh vector. *)
val sub : t -> t -> t

(** [norm2 v] is the Euclidean norm of [v]. *)
val norm2 : t -> float

(** [norm_inf v] is the maximum absolute entry of [v] (0 for empty). *)
val norm_inf : t -> float

(** [max_abs_diff a b] is the infinity norm of [a - b]. *)
val max_abs_diff : t -> t -> float

(** [linspace a b n] is [n >= 2] evenly spaced samples from [a] to [b]
    inclusive. *)
val linspace : float -> float -> int -> t

(** [map f v] is the element-wise image of [v] under [f]. *)
val map : (float -> float) -> t -> t

(** [pp] formats a vector as [[x0; x1; ...]] with 6 significant digits. *)
val pp : Format.formatter -> t -> unit
