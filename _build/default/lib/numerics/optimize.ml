type nm_result = { x : Vec.t; fx : float; iterations : int; converged : bool }

(* Standard Nelder-Mead with reflection/expansion/contraction/shrink
   coefficients 1, 2, 0.5, 0.5. *)
let nelder_mead f x0 ?scale ?(tol = 1e-12) ?(max_iter = 2000) () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty start point";
  let scale =
    match scale with
    | Some s ->
      if Array.length s <> n then invalid_arg "Optimize.nelder_mead: scale length mismatch";
      s
    | None -> Array.map (fun x -> if x = 0.0 then 0.1 else 0.1 *. Float.abs x) x0
  in
  (* simplex of n+1 vertices with cached objective values *)
  let verts = Array.init (n + 1) (fun i ->
      let v = Vec.copy x0 in
      if i > 0 then v.(i - 1) <- v.(i - 1) +. scale.(i - 1);
      v)
  in
  let fvals = Array.map f verts in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare fvals.(a) fvals.(b)) idx;
    idx
  in
  let centroid_excl worst =
    let c = Vec.zeros n in
    for i = 0 to n do
      if i <> worst then Vec.axpy (1.0 /. float_of_int n) verts.(i) c
    done;
    c
  in
  let blend a alpha b beta =
    Array.init n (fun i -> (alpha *. a.(i)) +. (beta *. b.(i)))
  in
  let rec loop iter =
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let spread = Float.abs (fvals.(worst) -. fvals.(best)) in
    let denom = 1.0 +. Float.abs fvals.(best) in
    if spread /. denom <= tol then
      { x = Vec.copy verts.(best); fx = fvals.(best); iterations = iter; converged = true }
    else if iter >= max_iter then
      { x = Vec.copy verts.(best); fx = fvals.(best); iterations = iter; converged = false }
    else begin
      let c = centroid_excl worst in
      let reflected = blend c 2.0 verts.(worst) (-1.0) in
      let fr = f reflected in
      if fr < fvals.(best) then begin
        let expanded = blend c 3.0 verts.(worst) (-2.0) in
        let fe = f expanded in
        if fe < fr then begin
          verts.(worst) <- expanded;
          fvals.(worst) <- fe
        end
        else begin
          verts.(worst) <- reflected;
          fvals.(worst) <- fr
        end;
        loop (iter + 1)
      end
      else if fr < fvals.(second_worst) then begin
        verts.(worst) <- reflected;
        fvals.(worst) <- fr;
        loop (iter + 1)
      end
      else begin
        let contracted =
          if fr < fvals.(worst) then blend c 1.5 verts.(worst) (-0.5)
          else blend c 0.5 verts.(worst) 0.5
        in
        let fc = f contracted in
        if fc < Float.min fr fvals.(worst) then begin
          verts.(worst) <- contracted;
          fvals.(worst) <- fc;
          loop (iter + 1)
        end
        else begin
          (* shrink toward the best vertex *)
          for i = 0 to n do
            if i <> best then begin
              verts.(i) <- blend verts.(best) 0.5 verts.(i) 0.5;
              fvals.(i) <- f verts.(i)
            end
          done;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

type lm_result = { params : Vec.t; rmse : float; iterations : int; converged : bool }

let jacobian residuals x r0 =
  let n = Array.length x and m = Array.length r0 in
  let jac = Matrix.create m n in
  for j = 0 to n - 1 do
    let h = 1e-6 *. Float.max 1e-8 (Float.abs x.(j)) in
    let xj = x.(j) in
    x.(j) <- xj +. h;
    let r1 = residuals x in
    x.(j) <- xj;
    for i = 0 to m - 1 do
      Matrix.set jac i j ((r1.(i) -. r0.(i)) /. h)
    done
  done;
  jac

let levenberg_marquardt ~residuals ~x0 ?(tol = 1e-12) ?(max_iter = 200) ?(lambda0 = 1e-3) () =
  let n = Array.length x0 in
  let x = Vec.copy x0 in
  let cost r = 0.5 *. Vec.dot r r in
  let r = ref (residuals x) in
  let c = ref (cost !r) in
  let lambda = ref lambda0 in
  let m = Array.length !r in
  if m = 0 then invalid_arg "Optimize.levenberg_marquardt: no residuals";
  let finish iterations converged =
    { params = Vec.copy x; rmse = sqrt (2.0 *. !c /. float_of_int m); iterations; converged }
  in
  let rec loop iter =
    if iter >= max_iter then finish iter false
    else begin
      let jac = jacobian residuals x !r in
      (* normal equations: (J^T J + lambda * diag(J^T J)) dx = -J^T r *)
      let jt = Matrix.transpose jac in
      let jtj = Matrix.mat_mul jt jac in
      let g = Matrix.mat_vec jt !r in
      let g_norm = Vec.norm_inf g in
      if g_norm < tol then finish iter true
      else begin
        let rec try_step attempts =
          if attempts > 30 then None
          else begin
            let a = Matrix.copy jtj in
            for i = 0 to n - 1 do
              let d = Matrix.get jtj i i in
              let damp = if d = 0.0 then !lambda else !lambda *. d in
              Matrix.add_to a i i damp
            done;
            match Lu.factor a with
            | exception Lu.Singular _ ->
              lambda := !lambda *. 10.0;
              try_step (attempts + 1)
            | f ->
              let dx = Lu.solve f (Vec.scale (-1.0) g) in
              let x_try = Vec.add x dx in
              let r_try = residuals x_try in
              let c_try = cost r_try in
              if Float.is_nan c_try || c_try >= !c then begin
                lambda := !lambda *. 10.0;
                try_step (attempts + 1)
              end
              else Some (x_try, r_try, c_try)
          end
        in
        match try_step 0 with
        | None -> finish iter false
        | Some (x_new, r_new, c_new) ->
          let improvement = (!c -. c_new) /. Float.max 1e-300 !c in
          Array.blit x_new 0 x 0 n;
          r := r_new;
          c := c_new;
          lambda := Float.max 1e-12 (!lambda /. 10.0);
          if improvement < tol then finish (iter + 1) true else loop (iter + 1)
      end
    end
  in
  loop 0
