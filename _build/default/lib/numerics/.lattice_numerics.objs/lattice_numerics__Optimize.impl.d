lib/numerics/optimize.ml: Array Float Lu Matrix Vec
