lib/numerics/cg.mli: Vec
