lib/numerics/stats.mli:
