lib/numerics/interp.ml: Array List
