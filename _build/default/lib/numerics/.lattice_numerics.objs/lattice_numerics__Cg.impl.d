lib/numerics/cg.ml: Array Vec
