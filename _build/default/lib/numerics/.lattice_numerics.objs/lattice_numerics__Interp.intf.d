lib/numerics/interp.mli:
