(** LU decomposition with partial pivoting and linear solves.

    This is the workhorse behind every Newton iteration of the circuit
    simulator: the MNA Jacobian is factored once per iteration and solved
    against the residual. *)

exception Singular of int
(** Raised when no usable pivot is found; the payload is the elimination
    column at which the factorization broke down. *)

type factored
(** An LU factorization (pivoted, stored compactly). *)

(** [factor m] factors a square matrix. Raises [Singular] if a pivot falls
    below an absolute threshold of [1e-300], and [Invalid_argument] if [m] is
    not square. [m] itself is not modified. *)
val factor : Matrix.t -> factored

(** [solve f b] solves [A x = b] for the matrix [A] that produced [f];
    [b] is not modified. *)
val solve : factored -> Vec.t -> Vec.t

(** [solve_in_place f b] overwrites [b] with the solution, avoiding an
    allocation. *)
val solve_in_place : factored -> Vec.t -> unit

(** [solve_dense m b] is [solve (factor m) b]; convenient for one-shot
    systems. *)
val solve_dense : Matrix.t -> Vec.t -> Vec.t

(** [determinant f] is the determinant recovered from the factorization. *)
val determinant : factored -> float

(** [condition_estimate f] is a cheap lower-bound estimate of the 1-norm
    condition number (ratio of largest to smallest absolute pivot). *)
val condition_estimate : factored -> float
