(** Piecewise-linear interpolation and level-crossing detection on sampled
    curves.

    Shared by the waveform measurement code (rise/fall times of the XOR3
    transient, Fig 11) and the threshold-voltage extraction (constant-current
    crossing of an I-V sweep). *)

(** [lookup xs ys x] linearly interpolates [ys] over the strictly increasing
    abscissae [xs] at [x], clamping outside the range. Raises
    [Invalid_argument] on empty or mismatched inputs. *)
val lookup : float array -> float array -> float -> float

(** [crossings xs ys level] is every abscissa (in order) at which the
    piecewise-linear curve crosses [level], interpolated between samples.
    Exact hits at sample points are reported once. *)
val crossings : float array -> float array -> float -> float list

(** [first_crossing xs ys level] is [Some x] for the earliest crossing, or
    [None] when the curve never reaches [level]. *)
val first_crossing : float array -> float array -> float -> float option

(** [first_crossing_after xs ys ~after level] restricts the search to
    abscissae strictly greater than [after]. *)
val first_crossing_after : float array -> float array -> after:float -> float -> float option

(** [bisect f lo hi ~tol] finds a root of [f] in [[lo, hi]] by bisection,
    assuming [f lo] and [f hi] have opposite signs (raises
    [Invalid_argument] otherwise). Stops when the bracket is narrower than
    [tol]. *)
val bisect : (float -> float) -> float -> float -> tol:float -> float
