type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let solve ~apply ~b ?x0 ?(tol = 1e-10) ?max_iter () =
  let n = Array.length b in
  let max_iter = match max_iter with Some m -> m | None -> 4 * n in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let ax = Vec.zeros n in
  apply x ax;
  let r = Vec.sub b ax in
  let p = Vec.copy r in
  let ap = Vec.zeros n in
  let b_norm = Vec.norm2 b in
  let target = if b_norm = 0.0 then tol else tol *. b_norm in
  let rs_old = ref (Vec.dot r r) in
  let rec loop iter =
    let r_norm = sqrt !rs_old in
    if r_norm <= target then { solution = x; iterations = iter; residual_norm = r_norm; converged = true }
    else if iter >= max_iter then
      { solution = x; iterations = iter; residual_norm = r_norm; converged = false }
    else begin
      apply p ap;
      let p_ap = Vec.dot p ap in
      if p_ap <= 0.0 then
        (* operator not SPD along p; stop rather than diverge *)
        { solution = x; iterations = iter; residual_norm = r_norm; converged = false }
      else begin
        let alpha = !rs_old /. p_ap in
        Vec.axpy alpha p x;
        Vec.axpy (-.alpha) ap r;
        let rs_new = Vec.dot r r in
        let beta = rs_new /. !rs_old in
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done;
        rs_old := rs_new;
        loop (iter + 1)
      end
    end
  in
  loop 0
