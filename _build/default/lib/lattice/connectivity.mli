(** Top-plate to bottom-plate connectivity of a lattice under a conduction
    pattern.

    This is the semantic ground truth of the lattice model: the lattice
    function evaluates to 1 exactly when the ON switches form a path from the
    top plate to the bottom plate (paper Section II). Two interchangeable
    kernels are provided — breadth-first search and union-find — which the
    test suite checks against each other (an ablation DESIGN.md calls out). *)

(** [connected_bfs ~rows ~cols on] is [true] when some top-row site with
    [on.(site)] reaches a bottom-row ON site through 4-adjacent ON sites. *)
val connected_bfs : rows:int -> cols:int -> bool array -> bool

(** [connected_union_find ~rows ~cols on] computes the same predicate with a
    union-find over ON sites plus two virtual plate nodes. *)
val connected_union_find : rows:int -> cols:int -> bool array -> bool

(** [connected] is the default kernel ([connected_bfs]). *)
val connected : rows:int -> cols:int -> bool array -> bool

(** [eval grid assignment] evaluates the lattice function of an assigned
    grid at a variable-bitmask assignment. *)
val eval : Grid.t -> int -> bool

(** [truthtable grid] tabulates [eval grid] over all assignments of
    [Grid.nvars grid] variables (which must be at most 20). *)
val truthtable : Grid.t -> Lattice_boolfn.Truthtable.t

(** [table_of_patterns ~rows ~cols] precomputes connectivity for all
    [2^(rows*cols)] conduction patterns (requires [rows * cols <= 20]);
    index the result by the pattern bitmask (site [i] ON = bit [i]). Used by
    the exhaustive synthesizer where millions of grids are screened. *)
val table_of_patterns : rows:int -> cols:int -> Bytes.t
