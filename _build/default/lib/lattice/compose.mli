(** Compositional lattice construction (the approach of the paper's
    reference [2], Bernasconi et al., "Composition of switching lattices").

    Lattices compose under AND and OR with isolating spacers:

    - [disjunction g1 g2]: pad both to equal height with always-ON rows
      (which preserve each lattice function: reaching the new bottom still
      requires crossing the old bottom row), then place them side by side
      separated by an always-OFF column. The spacer is what makes this
      exact — without it, paths weaving between the halves realize spurious
      products (e.g. two 3x1 columns side by side conduct under
      [x1 x3 x4 x6] with neither column complete).
    - [conjunction g1 g2]: pad both to equal width with always-OFF columns,
      then stack them with an always-ON row in between; the bridge row lets
      a path exit [g1] in any column and enter [g2] in any other, making
      the function exactly [f1 AND f2].

    Together with 1x1 literal lattices this compiles any negation-normal-form
    expression: [of_expr] pushes negations to the leaves (De Morgan, XOR
    expansion) and composes. The resulting lattices are larger than the
    dual-based synthesis of [Lattice_synthesis.Altun_riedel] but the
    construction is purely structural — no truth table is ever built — so it
    scales to many variables. *)

(** [literal v polarity] is the 1 x 1 lattice of one switch. *)
val literal : int -> bool -> Grid.t

(** [constant b] is the 1 x 1 constant lattice. *)
val constant : bool -> Grid.t

(** [pad_to_height g h] appends always-ON rows ([h >= rows]); the lattice
    function is unchanged. *)
val pad_to_height : Grid.t -> int -> Grid.t

(** [pad_to_width g w] appends always-OFF columns ([w >= cols]); the
    lattice function is unchanged. *)
val pad_to_width : Grid.t -> int -> Grid.t

(** [disjunction g1 g2] realizes [f1 OR f2]. *)
val disjunction : Grid.t -> Grid.t -> Grid.t

(** [conjunction g1 g2] realizes [f1 AND f2]. *)
val conjunction : Grid.t -> Grid.t -> Grid.t

(** [of_expr e] compiles an expression to a lattice through its
    negation normal form. *)
val of_expr : Lattice_boolfn.Expr.t -> Grid.t
