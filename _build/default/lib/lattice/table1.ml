(* Values as printed in paper Table I; rows indexed by m = 2..9, columns by
   n = 2..9. *)
let published =
  [|
    [| 2; 3; 4; 5; 6; 7; 8; 9 |];
    [| 4; 9; 16; 25; 36; 49; 64; 81 |];
    [| 6; 17; 36; 67; 118; 203; 344; 575 |];
    [| 10; 37; 94; 205; 436; 957; 2146; 4773 |];
    [| 16; 77; 236; 621; 1668; 4883; 14880; 44331 |];
    [| 26; 163; 602; 1905; 6562; 26317; 110838; 446595 |];
    [| 42; 343; 1528; 5835; 25686; 139231; 797048; 4288707 |];
    [| 68; 723; 3882; 17873; 100294; 723153; 5509834; 38930447 |];
  |]

let memo : (int * int, int) Hashtbl.t = Hashtbl.create 64

let count ~rows ~cols =
  match Hashtbl.find_opt memo (rows, cols) with
  | Some v -> v
  | None ->
    let v = Paths.count_irredundant ~rows ~cols in
    Hashtbl.replace memo (rows, cols) v;
    v

let paper_value ~rows ~cols =
  if rows < 2 || rows > 9 || cols < 2 || cols > 9 then
    invalid_arg "Table1.paper_value: published range is 2..9";
  published.(rows - 2).(cols - 2)

let dimensions =
  List.concat_map (fun m -> List.map (fun n -> (m, n)) [ 2; 3; 4; 5; 6; 7; 8; 9 ]) [ 2; 3; 4; 5; 6; 7; 8; 9 ]

let render ?(max_dim = 9) ~compute () =
  let max_dim = Int.min 9 (Int.max 2 max_dim) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "m/n ";
  for n = 2 to max_dim do
    Buffer.add_string buf (Printf.sprintf "%10d" n)
  done;
  Buffer.add_char buf '\n';
  for m = 2 to max_dim do
    Buffer.add_string buf (Printf.sprintf "%-4d" m);
    for n = 2 to max_dim do
      let v = if compute then count ~rows:m ~cols:n else paper_value ~rows:m ~cols:n in
      Buffer.add_string buf (Printf.sprintf "%10d" v)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
