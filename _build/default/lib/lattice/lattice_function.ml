module Sop = Lattice_boolfn.Sop
module Cube = Lattice_boolfn.Cube

let of_generic ~rows ~cols =
  let n = rows * cols in
  if n > Cube.max_vars then invalid_arg "Lattice_function.of_generic: too many sites for cube masks";
  let cubes = ref [] in
  Paths.iter_irredundant ~rows ~cols (fun path ->
      let pos = Array.fold_left (fun acc site -> acc lor (1 lsl site)) 0 path in
      cubes := Cube.of_masks ~pos ~neg:0 :: !cubes);
  Sop.of_cubes n !cubes

let of_assigned grid =
  let rows = grid.Grid.rows and cols = grid.Grid.cols in
  let nvars = Grid.nvars grid in
  let cubes = ref [] in
  Paths.iter_irredundant ~rows ~cols (fun path ->
      let exception Dead in
      match
        Array.fold_left
          (fun cube site ->
            match grid.Grid.entries.(site) with
            | Grid.Const false -> raise Dead
            | Grid.Const true -> cube
            | Grid.Lit (v, p) -> (
              try Cube.and_literal cube v p with Cube.Contradictory -> raise Dead))
          Cube.one path
      with
      | cube -> cubes := cube :: !cubes
      | exception Dead -> ())
  |> ignore;
  Sop.absorb (Sop.of_cubes nvars !cubes)

let product_strings ~rows ~cols =
  let out = ref [] in
  Paths.iter_irredundant ~rows ~cols (fun path ->
      let names = List.map (fun site -> Printf.sprintf "x%d" (site + 1)) (Array.to_list path) in
      out := String.concat "" (List.map (fun s -> s) names) :: !out);
  List.rev !out
