module Expr = Lattice_boolfn.Expr

let literal v polarity = Grid.create 1 1 [| Grid.Lit (v, polarity) |]

let constant b = Grid.create 1 1 [| Grid.Const b |]

let pad_to_height g h =
  let rows = g.Grid.rows and cols = g.Grid.cols in
  if h < rows then invalid_arg "Compose.pad_to_height: target below current height";
  if h = rows then g
  else begin
    let entries =
      Array.init (h * cols) (fun i -> if i < rows * cols then g.Grid.entries.(i) else Grid.Const true)
    in
    Grid.create h cols entries
  end

let pad_to_width g w =
  let rows = g.Grid.rows and cols = g.Grid.cols in
  if w < cols then invalid_arg "Compose.pad_to_width: target below current width";
  if w = cols then g
  else begin
    let entries =
      Array.init (rows * w) (fun i ->
          let r = i / w and c = i mod w in
          if c < cols then g.Grid.entries.((r * cols) + c) else Grid.Const false)
    in
    Grid.create rows w entries
  end

let disjunction g1 g2 =
  let h = Int.max g1.Grid.rows g2.Grid.rows in
  let g1 = pad_to_height g1 h and g2 = pad_to_height g2 h in
  let c1 = g1.Grid.cols and c2 = g2.Grid.cols in
  let w = c1 + 1 + c2 in
  let entries =
    Array.init (h * w) (fun i ->
        let r = i / w and c = i mod w in
        if c < c1 then g1.Grid.entries.((r * c1) + c)
        else if c = c1 then Grid.Const false (* isolating spacer column *)
        else g2.Grid.entries.((r * c2) + (c - c1 - 1)))
  in
  Grid.create h w entries

let conjunction g1 g2 =
  let w = Int.max g1.Grid.cols g2.Grid.cols in
  let g1 = pad_to_width g1 w and g2 = pad_to_width g2 w in
  let r1 = g1.Grid.rows and r2 = g2.Grid.rows in
  let h = r1 + 1 + r2 in
  let entries =
    Array.init (h * w) (fun i ->
        let r = i / w and c = i mod w in
        if r < r1 then g1.Grid.entries.((r * w) + c)
        else if r = r1 then Grid.Const true (* bridging spacer row *)
        else g2.Grid.entries.(((r - r1 - 1) * w) + c))
  in
  Grid.create h w entries

(* compile through negation normal form; [negated] tracks a pending
   complement pushed down from above *)
let rec compile negated e =
  match e with
  | Expr.Const b -> constant (if negated then not b else b)
  | Expr.Var v -> literal v (not negated)
  | Expr.Not e -> compile (not negated) e
  | Expr.And (a, b) ->
    if negated then disjunction (compile true a) (compile true b)
    else conjunction (compile false a) (compile false b)
  | Expr.Or (a, b) ->
    if negated then conjunction (compile true a) (compile true b)
    else disjunction (compile false a) (compile false b)
  | Expr.Xor (a, b) ->
    (* a xor b = (a and not b) or (not a and b); xnor dually *)
    if negated then
      disjunction
        (conjunction (compile false a) (compile false b))
        (conjunction (compile true a) (compile true b))
    else
      disjunction
        (conjunction (compile false a) (compile true b))
        (conjunction (compile true a) (compile false b))

let of_expr e = compile false e
