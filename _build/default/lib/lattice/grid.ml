type entry = Lit of int * bool | Const of bool

type t = { rows : int; cols : int; entries : entry array }

let create rows cols entries =
  if rows < 1 || cols < 1 then invalid_arg "Grid.create: dimensions must be >= 1";
  if Array.length entries <> rows * cols then invalid_arg "Grid.create: entry count mismatch";
  { rows; cols; entries }

let generic rows cols =
  create rows cols (Array.init (rows * cols) (fun i -> Lit (i, true)))

let parse_cell intern cell =
  let cell = String.trim cell in
  if cell = "" then invalid_arg "Grid.of_strings: empty cell";
  if cell = "0" then Const false
  else if cell = "1" then Const true
  else begin
    let len = String.length cell in
    let primes = ref 0 in
    while !primes < len && cell.[len - 1 - !primes] = '\'' do
      incr primes
    done;
    let name = String.sub cell 0 (len - !primes) in
    if name = "" then invalid_arg "Grid.of_strings: bare prime";
    Lit (intern name, !primes land 1 = 0)
  end

let of_strings rows =
  (match rows with [] -> invalid_arg "Grid.of_strings: no rows" | _ :: _ -> ());
  let names = ref [] in
  let count = ref 0 in
  let intern name =
    match List.assoc_opt name !names with
    | Some i -> i
    | None ->
      let i = !count in
      names := (name, i) :: !names;
      incr count;
      i
  in
  let cols =
    match rows with
    | r :: _ -> List.length r
    | [] -> assert false
  in
  let entries =
    List.concat_map
      (fun row ->
        if List.length row <> cols then invalid_arg "Grid.of_strings: ragged rows";
        List.map (parse_cell intern) row)
      rows
  in
  let g = create (List.length rows) cols (Array.of_list entries) in
  let arr = Array.make !count "" in
  List.iter (fun (name, i) -> arr.(i) <- name) !names;
  (g, arr)

let site t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then invalid_arg "Grid.site: out of range";
  (r * t.cols) + c

let entry t r c = t.entries.(site t r c)
let size t = t.rows * t.cols

let nvars t =
  Array.fold_left
    (fun acc e -> match e with Lit (v, _) -> Int.max acc (v + 1) | Const _ -> acc)
    0 t.entries

let neighbors t i =
  let r = i / t.cols and c = i mod t.cols in
  let out = ref [] in
  if r > 0 then out := i - t.cols :: !out;
  if r < t.rows - 1 then out := i + t.cols :: !out;
  if c > 0 then out := (i - 1) :: !out;
  if c < t.cols - 1 then out := (i + 1) :: !out;
  !out

let eval_entry e assignment =
  match e with
  | Const b -> b
  | Lit (v, polarity) ->
    let bit = assignment land (1 lsl v) <> 0 in
    Bool.equal bit polarity

let on_pattern t assignment = Array.map (fun e -> eval_entry e assignment) t.entries

let entry_to_string ~names e =
  match e with
  | Const false -> "0"
  | Const true -> "1"
  | Lit (v, true) -> names v
  | Lit (v, false) -> names v ^ "'"

let to_string ~names t =
  let buf = Buffer.create 64 in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      if c > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%-3s" (entry_to_string ~names t.entries.((r * t.cols) + c)))
    done;
    if r < t.rows - 1 then Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
