(** Paper Table I: number of products of the [m x n] lattice function.

    The published values cover [2 <= m, n <= 9]; this module reproduces them
    by counting irredundant paths and also ships the printed values for
    regression checks. *)

(** [count ~rows ~cols] computes the entry by path enumeration. The largest
    published entry (9 x 9, 38 930 447 products) takes on the order of
    seconds. Results are memoized per dimension pair. *)
val count : rows:int -> cols:int -> int

(** [paper_value ~rows ~cols] is the value printed in Table I, for
    [2 <= rows, cols <= 9]; raises [Invalid_argument] outside that range. *)
val paper_value : rows:int -> cols:int -> int

(** [dimensions] is the [(rows, cols)] list of every Table I cell in
    row-major order. *)
val dimensions : (int * int) list

(** [render ?max_dim ~compute ()] formats the table like the paper
    (rows [m], columns [n]); with [compute = true] values are recomputed,
    otherwise the published values are printed. [max_dim] (default 9) trims
    the table for quick runs. *)
val render : ?max_dim:int -> compute:bool -> unit -> string
