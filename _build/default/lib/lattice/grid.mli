(** Rectangular four-terminal switching lattices.

    An [m x n] lattice (paper Fig 2b) is a grid of four-terminal switches;
    each switch is connected to its horizontal and vertical neighbours, the
    top plate touches every switch of row 0 and the bottom plate every switch
    of row [m-1]. A switch conducts between all four of its terminals when
    its control input evaluates to 1.

    A grid assigns to every site a control entry: a literal of the target
    function or a constant. The "generic" lattice whose site [(r, c)] is
    controlled by its own fresh variable [x_{r*n+c+1}] is [generic m n]; its
    lattice function is the object Table I counts. *)

type entry =
  | Lit of int * bool  (** variable index, polarity ([true] = positive) *)
  | Const of bool

type t = private {
  rows : int;
  cols : int;
  entries : entry array;  (** row-major, length [rows * cols] *)
}

(** [create rows cols entries] validates dimensions ([>= 1]) and length. *)
val create : int -> int -> entry array -> t

(** [generic rows cols] is the lattice whose site [i] (row-major) is
    controlled by positive literal of variable [i]. *)
val generic : int -> int -> t

(** [of_strings rows] builds a grid from rows like [["a"; "b'"; "1"]]; each
    cell is a variable name, optionally primed, or ["0"]/["1"]. Variables
    are interned in first-appearance order; the name table is returned. *)
val of_strings : string list list -> t * string array

(** [site t r c] is the row-major index of [(r, c)]. *)
val site : t -> int -> int -> int

(** [entry t r c] reads the control entry at [(r, c)]. *)
val entry : t -> int -> int -> entry

(** [size t] is [rows * cols], the switch count. *)
val size : t -> int

(** [nvars t] is 1 + the largest variable index mentioned (0 if none). *)
val nvars : t -> int

(** [neighbors t i] lists the row-major indices adjacent to site [i]
    (up/down/left/right). *)
val neighbors : t -> int -> int list

(** [on_pattern t assignment] is the per-site conduction pattern under a
    variable-bitmask assignment: element [i] is [true] when switch [i] is
    ON. *)
val on_pattern : t -> int -> bool array

(** [to_string ~names t] renders the grid, one row per line. *)
val to_string : names:(int -> string) -> t -> string
