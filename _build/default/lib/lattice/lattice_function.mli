(** Extraction of lattice functions as sums of products. *)

(** [of_generic ~rows ~cols] is the lattice function of the generic
    [rows x cols] lattice over variables [x1 .. x_{rows*cols}] (site-major;
    paper Fig 2c). Requires [rows * cols <= 62]. The result needs no further
    absorption: the enumerated paths are exactly the irredundant products. *)
val of_generic : rows:int -> cols:int -> Lattice_boolfn.Sop.t

(** [of_assigned grid] is the Boolean function computed by an assigned
    lattice, as an absorbed SOP over the grid's variables: each irredundant
    path contributes the conjunction of its cells' entries; paths through a
    constant 0 or with contradictory literals vanish, and the surviving
    products are absorbed. The result is semantically the lattice function
    (path existence) of the grid. *)
val of_assigned : Grid.t -> Lattice_boolfn.Sop.t

(** [product_strings ~rows ~cols] renders the generic lattice function's
    products with the paper's [x1 x4 x7] naming, in enumeration order. *)
val product_strings : rows:int -> cols:int -> string list
