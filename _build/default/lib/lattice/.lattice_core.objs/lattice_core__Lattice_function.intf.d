lib/lattice/lattice_function.mli: Grid Lattice_boolfn
