lib/lattice/paths.ml: Array Hashtbl Int List
