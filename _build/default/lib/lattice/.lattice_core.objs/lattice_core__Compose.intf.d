lib/lattice/compose.mli: Grid Lattice_boolfn
