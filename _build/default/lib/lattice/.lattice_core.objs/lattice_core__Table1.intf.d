lib/lattice/table1.mli:
