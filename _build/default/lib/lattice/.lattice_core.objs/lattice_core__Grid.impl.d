lib/lattice/grid.ml: Array Bool Buffer Int List Printf String
