lib/lattice/connectivity.ml: Array Bytes Grid Lattice_boolfn Queue
