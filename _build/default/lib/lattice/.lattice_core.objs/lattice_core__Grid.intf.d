lib/lattice/grid.mli:
