lib/lattice/lattice_function.ml: Array Grid Lattice_boolfn List Paths Printf String
