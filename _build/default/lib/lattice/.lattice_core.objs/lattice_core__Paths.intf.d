lib/lattice/paths.mli:
