lib/lattice/connectivity.mli: Bytes Grid Lattice_boolfn
