lib/lattice/table1.ml: Array Buffer Hashtbl Int List Paths Printf
