lib/lattice/compose.ml: Array Grid Int Lattice_boolfn
