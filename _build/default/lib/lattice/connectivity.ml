let connected_bfs ~rows ~cols on =
  if Array.length on <> rows * cols then invalid_arg "Connectivity: pattern size mismatch";
  let visited = Array.make (rows * cols) false in
  let queue = Queue.create () in
  for c = 0 to cols - 1 do
    if on.(c) then begin
      visited.(c) <- true;
      Queue.add c queue
    end
  done;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let r = i / cols in
    if r = rows - 1 then found := true
    else begin
      let push j =
        if on.(j) && not visited.(j) then begin
          visited.(j) <- true;
          Queue.add j queue
        end
      in
      let c = i mod cols in
      if r > 0 then push (i - cols);
      if r < rows - 1 then push (i + cols);
      if c > 0 then push (i - 1);
      if c < cols - 1 then push (i + 1)
    end
  done;
  !found

let connected_union_find ~rows ~cols on =
  if Array.length on <> rows * cols then invalid_arg "Connectivity: pattern size mismatch";
  let n = rows * cols in
  let top = n and bottom = n + 1 in
  let parent = Array.init (n + 2) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  for i = 0 to n - 1 do
    if on.(i) then begin
      let r = i / cols and c = i mod cols in
      if r = 0 then union i top;
      if r = rows - 1 then union i bottom;
      if c > 0 && on.(i - 1) then union i (i - 1);
      if r > 0 && on.(i - cols) then union i (i - cols)
    end
  done;
  find top = find bottom

let connected = connected_bfs

let eval grid assignment =
  let on = Grid.on_pattern grid assignment in
  connected ~rows:grid.Grid.rows ~cols:grid.Grid.cols on

let truthtable grid =
  let nvars = Grid.nvars grid in
  Lattice_boolfn.Truthtable.create nvars (eval grid)

let table_of_patterns ~rows ~cols =
  let n = rows * cols in
  if n > 20 then invalid_arg "Connectivity.table_of_patterns: lattice too large";
  let size = 1 lsl n in
  let table = Bytes.make size '\000' in
  let on = Array.make n false in
  for pattern = 0 to size - 1 do
    for i = 0 to n - 1 do
      on.(i) <- pattern land (1 lsl i) <> 0
    done;
    if connected_bfs ~rows ~cols on then Bytes.set table pattern '\001'
  done;
  table
