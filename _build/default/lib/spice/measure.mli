(** Waveform measurements (the numbers the paper reads off Fig 11) and a
    terminal ASCII plotter. *)

(** [steady_levels times values ~settle] partitions the waveform into the
    samples after [settle] and returns [(low, high)] as robust percentile
    levels (5th / 95th) — the logic-0 and logic-1 output levels. *)
val steady_levels : float array -> float array -> settle:float -> float * float

(** [rise_time times values ~low ~high] is the first 10%-90% rise duration
    between levels [low] and [high], or [None]. *)
val rise_time : float array -> float array -> low:float -> high:float -> float option

(** [fall_time times values ~low ~high] is the first 90%-10% fall
    duration. *)
val fall_time : float array -> float array -> low:float -> high:float -> float option

(** [edge_between times values ~from_level ~to_level] is the duration of
    the first clean edge from one absolute level to another (no
    [from_level] re-crossing in between); useful for mid-swing propagation
    measurements. *)
val edge_between : float array -> float array -> from_level:float -> to_level:float -> float option

(** [average_after times values ~after] averages samples with
    [t >= after]. *)
val average_after : float array -> float array -> after:float -> float

(** [value_at times values t] interpolates the waveform at [t]. *)
val value_at : float array -> float array -> float -> float

(** [integral times values] is the trapezoidal integral of the waveform
    over its full time span (e.g. supply charge from a current
    waveform). *)
val integral : float array -> float array -> float

(** [energy_from_supply ~vdd times supply_current] integrates
    [vdd * -i(t)] — the energy delivered by a source whose branch current
    is recorded with the "into the + terminal" sign convention. *)
val energy_from_supply : vdd:float -> float array -> float array -> float

(** [ascii_plot ~width ~height ~label times values] renders one waveform
    as an ASCII chart with time on the horizontal axis. *)
val ascii_plot : width:int -> height:int -> label:string -> float array -> float array -> string

(** [ascii_plot_many ~width ~height curves] overlays labelled waveforms
    (each drawn with its own character). *)
val ascii_plot_many :
  width:int -> height:int -> (string * float array * float array) list -> string
