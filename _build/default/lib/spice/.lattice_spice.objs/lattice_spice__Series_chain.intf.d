lib/spice/series_chain.mli: Fts Netlist
