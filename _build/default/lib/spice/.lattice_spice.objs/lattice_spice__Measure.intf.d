lib/spice/measure.mli:
