lib/spice/netlist.ml: Array Buffer Float Hashtbl Lattice_mosfet List Printf Source String Units
