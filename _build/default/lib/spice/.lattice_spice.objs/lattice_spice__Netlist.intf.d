lib/spice/netlist.mli: Lattice_mosfet Source
