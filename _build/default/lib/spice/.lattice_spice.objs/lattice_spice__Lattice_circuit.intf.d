lib/spice/lattice_circuit.mli: Fts Lattice_core Netlist Source
