lib/spice/dcop.ml: Array Float Lattice_numerics List Mna Netlist Printf
