lib/spice/series_chain.ml: Array Dcop Fts Lattice_numerics Netlist Printf Source
