lib/spice/transient.mli: Dcop Netlist
