lib/spice/lattice_circuit.ml: Array Fts Int Lattice_core List Netlist Printf Source
