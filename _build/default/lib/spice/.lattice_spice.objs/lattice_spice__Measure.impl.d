lib/spice/measure.ml: Array Buffer Float Int Lattice_numerics List Printf String
