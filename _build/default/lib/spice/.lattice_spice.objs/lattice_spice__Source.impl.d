lib/spice/source.ml: Float
