lib/spice/ac.mli: Netlist
