lib/spice/units.mli:
