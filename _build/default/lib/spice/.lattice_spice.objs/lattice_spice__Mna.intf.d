lib/spice/mna.mli: Lattice_numerics Netlist
