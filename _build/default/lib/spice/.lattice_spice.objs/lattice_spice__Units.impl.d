lib/spice/units.ml: Float Printf String
