lib/spice/fts.mli: Lattice_mosfet Netlist
