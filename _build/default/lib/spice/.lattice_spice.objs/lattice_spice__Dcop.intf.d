lib/spice/dcop.mli: Lattice_numerics Mna Netlist
