lib/spice/mna.ml: Array Float Lattice_mosfet Lattice_numerics List Netlist Source
