lib/spice/transient.ml: Array Dcop Float Int Lattice_numerics List Mna Netlist Printf
