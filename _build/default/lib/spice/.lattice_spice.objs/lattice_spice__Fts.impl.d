lib/spice/fts.ml: Lattice_mosfet Netlist Printf
