lib/spice/ac.ml: Array Dcop Float Int Lattice_numerics List Mna Netlist
