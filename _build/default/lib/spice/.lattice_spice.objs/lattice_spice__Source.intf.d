lib/spice/source.mli:
