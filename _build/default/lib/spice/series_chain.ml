type t = { netlist : Netlist.t; supply_index : int }

let build ~n ?(types = Fts.default_types) ?(gate_v = 1.2) ?(terminal_cap = Fts.default_terminal_cap)
    ~v_top () =
  if n < 1 then invalid_arg "Series_chain.build: need at least one switch";
  let ckt = Netlist.create () in
  let gate = Netlist.node ckt "gate" in
  Netlist.vsource ckt "VG" gate Netlist.ground (Source.Dc gate_v);
  let top = Netlist.node ckt "top" in
  (* the top driver is the first voltage source after VG: index 1 *)
  Netlist.vsource ckt "VTOP" top Netlist.ground (Source.Dc v_top);
  let chain_node k =
    if k = 0 then top else if k = n then Netlist.ground
    else Netlist.node ckt (Printf.sprintf "chain_%d" k)
  in
  for k = 0 to n - 1 do
    Fts.instantiate ckt
      ~name:(Printf.sprintf "X%d" k)
      ~north:(chain_node k)
      ~east:(Netlist.node ckt (Printf.sprintf "e_%d" k))
      ~south:(chain_node (k + 1))
      ~west:(Netlist.node ckt (Printf.sprintf "w_%d" k))
      ~gate ~terminal_cap types
  done;
  { netlist = ckt; supply_index = 1 }

let current ~n ?types ?gate_v ~v_top () =
  let chain = build ~n ?types ?gate_v ~v_top () in
  let x = Dcop.solve chain.netlist in
  (* branch current positive into the source's + terminal; conduction pulls
     current out of the top node, so negate *)
  -.x.(Netlist.vsource_row chain.netlist chain.supply_index)

(* Fig 12b sweeps the supply, which drives the gates too (the chain would
   otherwise saturate once internal nodes rise above VG - Vth); the gate is
   therefore tied to the swept voltage. *)
let voltage_for_current ~n ?types ?gate_v:_ ~i_target () =
  if i_target <= 0.0 then invalid_arg "Series_chain.voltage_for_current: target must be positive";
  let f v = current ~n ?types ~gate_v:v ~v_top:v () -. i_target in
  Lattice_numerics.Interp.bisect f 0.0 20.0 ~tol:1e-4
