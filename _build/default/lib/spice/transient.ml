module Vec = Lattice_numerics.Vec

type integrator = Backward_euler | Trapezoidal

type options = { integrator : integrator; dc : Dcop.options; max_step_halvings : int }

let default_options =
  { integrator = Trapezoidal; dc = Dcop.default_options; max_step_halvings = 8 }

type result = {
  times : float array;
  node_names : string array;
  voltages : float array array;
  current_names : string array;
  currents : float array array;
  newton_iterations_total : int;
}

let lookup_series names series name =
  let rec find i =
    if i >= Array.length names then raise Not_found
    else if names.(i) = name then series.(i)
    else find (i + 1)
  in
  find 0

let signal result name = lookup_series result.node_names result.voltages name
let branch_current result name = lookup_series result.current_names result.currents name

type cap_state = { farads : float array; mutable v_prev : float array; mutable i_prev : float array }

let companion state ~dt ~use_trap =
  let n = Array.length state.farads in
  let geq = Array.make n 0.0 and ieq = Array.make n 0.0 in
  for k = 0 to n - 1 do
    if use_trap then begin
      geq.(k) <- 2.0 *. state.farads.(k) /. dt;
      ieq.(k) <- -.((geq.(k) *. state.v_prev.(k)) +. state.i_prev.(k))
    end
    else begin
      geq.(k) <- state.farads.(k) /. dt;
      ieq.(k) <- -.(geq.(k) *. state.v_prev.(k))
    end
  done;
  { Mna.geq; ieq }

let cap_farads netlist =
  let out = ref [] in
  List.iter
    (function
      | Netlist.Capacitor { farads; _ } -> out := farads :: !out
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> ())
    (Netlist.elements netlist);
  Array.of_list (List.rev !out)

let run ?(options = default_options) netlist ~h ~t_stop ~record ?(record_currents = []) () =
  if h <= 0.0 || t_stop <= 0.0 then invalid_arg "Transient.run: h and t_stop must be positive";
  let record_nodes = List.map (fun name -> Netlist.node netlist name) record in
  let record_rows =
    List.map
      (fun name ->
        match Netlist.vsource_index netlist name with
        | Some idx -> Netlist.vsource_row netlist idx
        | None -> invalid_arg ("Transient.run: unknown voltage source " ^ name))
      record_currents
  in
  let x = ref (Dcop.solve ~options:options.dc ~time:0.0 netlist) in
  let caps =
    {
      farads = cap_farads netlist;
      v_prev = Mna.cap_voltages netlist !x;
      i_prev = Array.make (Mna.cap_count netlist) 0.0;
    }
  in
  let newton_total = ref 0 in
  let first_step = ref true in
  (* advance from [t] by [dt]; recursive halving on Newton failure *)
  let rec advance t dt halvings =
    let use_trap = options.integrator = Trapezoidal && not !first_step in
    let comp = companion caps ~dt ~use_trap in
    match
      Dcop.newton netlist ~options:options.dc ~x0:!x ~time:(t +. dt) ~gmin:options.dc.Dcop.gmin_final
        ~source_scale:1.0 ~caps:(Some comp)
    with
    | x_new ->
      let v_new = Mna.cap_voltages netlist x_new in
      let i_new =
        Array.mapi (fun k g -> (g *. v_new.(k)) +. comp.Mna.ieq.(k)) comp.Mna.geq
      in
      caps.v_prev <- v_new;
      caps.i_prev <- i_new;
      x := x_new;
      first_step := false;
      incr newton_total
    | exception Dcop.Convergence_failure msg ->
      if halvings >= options.max_step_halvings then
        raise (Dcop.Convergence_failure (Printf.sprintf "transient at t=%.4g: %s" t msg));
      let half = dt /. 2.0 in
      advance t half (halvings + 1);
      advance (t +. half) half (halvings + 1)
  in
  let nsteps = int_of_float (Float.round (t_stop /. h)) in
  let nsteps = Int.max 1 nsteps in
  let times = Array.make (nsteps + 1) 0.0 in
  let voltages = Array.map (fun _ -> Array.make (nsteps + 1) 0.0) (Array.of_list record) in
  let currents = Array.map (fun _ -> Array.make (nsteps + 1) 0.0) (Array.of_list record_currents) in
  let sample k =
    List.iteri (fun idx node -> voltages.(idx).(k) <- Mna.voltage !x node) record_nodes;
    List.iteri (fun idx row -> currents.(idx).(k) <- !x.(row)) record_rows;
    times.(k) <- float_of_int k *. h
  in
  sample 0;
  for k = 1 to nsteps do
    advance (float_of_int (k - 1) *. h) h 0;
    sample k
  done;
  {
    times;
    node_names = Array.of_list record;
    voltages;
    current_names = Array.of_list record_currents;
    currents;
    newton_iterations_total = !newton_total;
  }
