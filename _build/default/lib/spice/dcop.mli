(** DC operating-point analysis: damped Newton-Raphson with gmin stepping
    and a source-stepping fallback. *)

exception Convergence_failure of string

type options = {
  max_iterations : int;  (** Newton iterations per continuation step (default 200) *)
  abstol : float;  (** absolute voltage tolerance, V (default 1e-9) *)
  reltol : float;  (** relative tolerance (default 1e-6) *)
  gmin_final : float;  (** residual drain-source conductance, S (default 1e-12) *)
  gmin_steps : float list;  (** continuation ladder, largest first *)
  source_steps : int;  (** ramp points for the source-stepping fallback (default 10) *)
  damping : float;  (** max voltage change per Newton step, V (default 1.0) *)
}

val default_options : options

(** [newton netlist ~options ~x0 ~time ~gmin ~source_scale ~caps] runs plain
    Newton at a fixed continuation point ([gshunt] adds a node-to-ground
    conductance, default 0); returns the solution or raises
    [Convergence_failure]. Exposed for the convergence-aid ablation. *)
val newton :
  ?gshunt:float ->
  Netlist.t ->
  options:options ->
  x0:Lattice_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  caps:Mna.cap_companion option ->
  Lattice_numerics.Vec.t

(** [solve ?options ?x0 ?time netlist] computes the operating point at
    [time] (default 0). Strategy ladder: plain Newton, gmin stepping,
    source stepping, the same three heavily damped, then a node-shunt
    continuation. Raises [Convergence_failure] if everything fails. *)
val solve :
  ?options:options -> ?x0:Lattice_numerics.Vec.t -> ?time:float -> Netlist.t -> Lattice_numerics.Vec.t
