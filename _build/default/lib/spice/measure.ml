module Interp = Lattice_numerics.Interp

let steady_levels times values ~settle =
  if Array.length times <> Array.length values || Array.length times = 0 then
    invalid_arg "Measure.steady_levels: bad input";
  let tail = ref [] in
  Array.iteri (fun i t -> if t >= settle then tail := values.(i) :: !tail) times;
  let arr = Array.of_list !tail in
  if Array.length arr = 0 then invalid_arg "Measure.steady_levels: settle beyond waveform";
  Array.sort compare arr;
  let n = Array.length arr in
  let pct p = arr.(Int.min (n - 1) (int_of_float (p *. float_of_int (n - 1)))) in
  (pct 0.05, pct 0.95)

let edge_time times values ~from_level ~to_level =
  let start_crossings = Interp.crossings times values from_level in
  let end_crossings = Interp.crossings times values to_level in
  (* first [from_level] crossing followed by a [to_level] crossing with no
     other [from_level] crossing in between: a clean edge *)
  let rec scan = function
    | [] -> None
    | t0 :: rest -> (
      let next_from = match rest with [] -> infinity | t :: _ -> t in
      match List.find_opt (fun t -> t > t0) end_crossings with
      | Some t1 when t1 <= next_from -> Some (t1 -. t0)
      | Some _ | None -> scan rest)
  in
  scan start_crossings

let edge_between times values ~from_level ~to_level = edge_time times values ~from_level ~to_level

let rise_time times values ~low ~high =
  let span = high -. low in
  if span <= 0.0 then invalid_arg "Measure.rise_time: high must exceed low";
  edge_time times values ~from_level:(low +. (0.1 *. span)) ~to_level:(low +. (0.9 *. span))

let fall_time times values ~low ~high =
  let span = high -. low in
  if span <= 0.0 then invalid_arg "Measure.fall_time: high must exceed low";
  edge_time times values ~from_level:(low +. (0.9 *. span)) ~to_level:(low +. (0.1 *. span))

let average_after times values ~after =
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i t ->
      if t >= after then begin
        acc := !acc +. values.(i);
        incr count
      end)
    times;
  if !count = 0 then invalid_arg "Measure.average_after: no samples";
  !acc /. float_of_int !count

let value_at times values t = Interp.lookup times values t

let integral times values =
  if Array.length times <> Array.length values then invalid_arg "Measure.integral: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length times - 2 do
    acc := !acc +. (0.5 *. (values.(i) +. values.(i + 1)) *. (times.(i + 1) -. times.(i)))
  done;
  !acc

let energy_from_supply ~vdd times supply_current =
  -.vdd *. integral times supply_current

let plot_chars = [| '*'; 'o'; '+'; 'x'; '~'; '^' |]

let ascii_plot_many ~width ~height curves =
  if width < 16 || height < 4 then invalid_arg "Measure.ascii_plot: too small";
  match curves with
  | [] -> ""
  | _ ->
    let tmin = ref infinity and tmax = ref neg_infinity in
    let vmin = ref infinity and vmax = ref neg_infinity in
    List.iter
      (fun (_, ts, vs) ->
        Array.iter (fun t -> tmin := Float.min !tmin t; tmax := Float.max !tmax t) ts;
        Array.iter (fun v -> vmin := Float.min !vmin v; vmax := Float.max !vmax v) vs)
      curves;
    if !tmax <= !tmin then invalid_arg "Measure.ascii_plot: degenerate time axis";
    if !vmax <= !vmin then begin
      vmax := !vmin +. 1.0
    end;
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun ci (_, ts, vs) ->
        let ch = plot_chars.(ci mod Array.length plot_chars) in
        for col = 0 to width - 1 do
          let t = !tmin +. ((!tmax -. !tmin) *. float_of_int col /. float_of_int (width - 1)) in
          let v = Interp.lookup ts vs t in
          let row =
            height - 1 - int_of_float ((v -. !vmin) /. (!vmax -. !vmin) *. float_of_int (height - 1))
          in
          let row = Int.max 0 (Int.min (height - 1) row) in
          canvas.(row).(col) <- ch
        done)
      curves;
    let buf = Buffer.create (width * height) in
    Array.iteri
      (fun r row ->
        let v = !vmax -. ((!vmax -. !vmin) *. float_of_int r /. float_of_int (height - 1)) in
        Buffer.add_string buf (Printf.sprintf "%10.3g |" v);
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (String.make 11 ' ' ^ "+" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "%10s  t: %.3g .. %.3g s   " "" !tmin !tmax);
    List.iteri
      (fun ci (label, _, _) ->
        Buffer.add_string buf
          (Printf.sprintf "[%c] %s  " plot_chars.(ci mod Array.length plot_chars) label))
      curves;
    Buffer.add_char buf '\n';
    Buffer.contents buf

let ascii_plot ~width ~height ~label times values =
  ascii_plot_many ~width ~height [ (label, times, values) ]
