module Vec = Lattice_numerics.Vec
module Lu = Lattice_numerics.Lu

exception Convergence_failure of string

type options = {
  max_iterations : int;
  abstol : float;
  reltol : float;
  gmin_final : float;
  gmin_steps : float list;
  source_steps : int;
  damping : float;
}

let default_options =
  {
    max_iterations = 200;
    abstol = 1e-9;
    reltol = 1e-6;
    gmin_final = 1e-12;
    gmin_steps = [ 1e-3; 1e-5; 1e-7; 1e-9; 1e-12 ];
    source_steps = 10;
    damping = 1.0;
  }

let converged options x_old x_new =
  let n = Array.length x_old in
  let rec go i =
    i >= n
    ||
    let d = Float.abs (x_new.(i) -. x_old.(i)) in
    d <= options.abstol +. (options.reltol *. Float.abs x_new.(i)) && go (i + 1)
  in
  go 0

let newton ?(gshunt = 0.0) netlist ~options ~x0 ~time ~gmin ~source_scale ~caps =
  let x = Vec.copy x0 in
  let rec iterate k =
    if k >= options.max_iterations then
      raise (Convergence_failure (Printf.sprintf "Newton: no convergence after %d iterations" k));
    let a, b = Mna.stamp netlist ~x ~time ~gmin ~gshunt ~source_scale ~caps in
    let x_new =
      match Lu.factor a with
      | f -> Lu.solve f b
      | exception Lu.Singular col ->
        raise (Convergence_failure (Printf.sprintf "singular MNA matrix at column %d" col))
    in
    (* limit per-step voltage change to keep the level-1 model in range *)
    let nnodes = Netlist.num_nodes netlist in
    for i = 0 to nnodes - 1 do
      let d = x_new.(i) -. x.(i) in
      if Float.abs d > options.damping then x_new.(i) <- x.(i) +. (Float.copy_sign options.damping d)
    done;
    if converged options x x_new then x_new
    else begin
      Array.blit x_new 0 x 0 (Array.length x);
      iterate (k + 1)
    end
  in
  iterate 0

let solve ?(options = default_options) ?x0 ?(time = 0.0) netlist =
  let n = Netlist.unknowns netlist in
  if n = 0 then [||]
  else begin
    let x0 = match x0 with Some x -> Vec.copy x | None -> Vec.zeros n in
    let attempt_plain options () =
      newton netlist ~options ~x0 ~time ~gmin:options.gmin_final ~source_scale:1.0 ~caps:None
    in
    let attempt_gmin options () =
      let x = ref (Vec.copy x0) in
      List.iter
        (fun gmin -> x := newton netlist ~options ~x0:!x ~time ~gmin ~source_scale:1.0 ~caps:None)
        options.gmin_steps;
      newton netlist ~options ~x0:!x ~time ~gmin:options.gmin_final ~source_scale:1.0 ~caps:None
    in
    let attempt_source options () =
      let x = ref (Vec.copy x0) in
      for k = 1 to options.source_steps do
        let scale = float_of_int k /. float_of_int options.source_steps in
        x :=
          newton netlist ~options ~x0:!x ~time ~gmin:options.gmin_final ~source_scale:scale
            ~caps:None
      done;
      !x
    in
    (* heavily damped settings suppress the source/drain-swap chattering
       that plain Newton can fall into on badly matched devices *)
    let damped =
      { options with damping = Float.min 0.1 options.damping; max_iterations = 4 * options.max_iterations }
    in
    (* last resort: walk a node-to-ground shunt from strong to negligible,
       warm-starting each stage. The ladder stops at 1e-12 S rather than 0:
       a node left floating by OFF switches has no zero-shunt operating
       point, and the residual bias (~fA) sits far below the device leakage
       floor. *)
    let attempt_gshunt options () =
      let x = ref (Vec.copy x0) in
      List.iter
        (fun gshunt ->
          x :=
            newton ~gshunt netlist ~options ~x0:!x ~time ~gmin:options.gmin_final
              ~source_scale:1.0 ~caps:None)
        [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; 1e-12 ];
      !x
    in
    let rec first_success = function
      | [] -> raise (Convergence_failure "all DC strategies failed")
      | attempt :: rest -> (
        match attempt () with
        | x -> x
        | exception Convergence_failure _ -> first_success rest)
    in
    first_success
      [
        attempt_plain options;
        attempt_gmin options;
        attempt_source options;
        attempt_plain damped;
        attempt_gmin damped;
        attempt_source damped;
        attempt_gshunt damped;
      ]
  end
