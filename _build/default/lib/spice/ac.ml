module Matrix = Lattice_numerics.Matrix
module Lu = Lattice_numerics.Lu

type point = { freq_hz : float; magnitude : float; phase_deg : float }

type response = { points : point list; dc_gain : float }

let cap_stamps netlist =
  List.filter_map
    (function
      | Netlist.Capacitor { n1; n2; farads; _ } ->
        Some (Netlist.node_index n1, Netlist.node_index n2, farads)
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> None)
    (Netlist.elements netlist)

let sweep netlist ~source ~output ~f_start ~f_stop ~points_per_decade =
  if f_start <= 0.0 || f_stop <= f_start then invalid_arg "Ac.sweep: bad frequency range";
  if points_per_decade < 1 then invalid_arg "Ac.sweep: need at least 1 point per decade";
  let source_row =
    match Netlist.vsource_index netlist source with
    | Some idx -> Netlist.vsource_row netlist idx
    | None -> invalid_arg ("Ac.sweep: unknown source " ^ source)
  in
  let out_index = Netlist.node_index (Netlist.node netlist output) in
  if out_index < 0 then invalid_arg "Ac.sweep: output is ground";
  let x_op = Dcop.solve netlist in
  let g_matrix, _ =
    Mna.stamp netlist ~x:x_op ~time:0.0 ~gmin:Dcop.default_options.Dcop.gmin_final ~gshunt:0.0
      ~source_scale:1.0 ~caps:None
  in
  let n = Netlist.unknowns netlist in
  let caps = cap_stamps netlist in
  let solve_at freq =
    let w = 2.0 *. Float.pi *. freq in
    (* real augmented system [[G, -B]; [B, G]] *)
    let a = Matrix.create (2 * n) (2 * n) in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        let g = Matrix.get g_matrix r c in
        Matrix.set a r c g;
        Matrix.set a (n + r) (n + c) g
      done
    done;
    let add_b r c v =
      if r >= 0 && c >= 0 then begin
        Matrix.add_to a r (n + c) (-.v);
        Matrix.add_to a (n + r) c v
      end
    in
    List.iter
      (fun (i1, i2, farads) ->
        let y = w *. farads in
        if i1 >= 0 then add_b i1 i1 y;
        if i2 >= 0 then add_b i2 i2 y;
        if i1 >= 0 && i2 >= 0 then begin
          add_b i1 i2 (-.y);
          add_b i2 i1 (-.y)
        end)
      caps;
    let b = Array.make (2 * n) 0.0 in
    b.(source_row) <- 1.0;
    let x = Lu.solve_dense a b in
    let re = x.(out_index) and im = x.(n + out_index) in
    {
      freq_hz = freq;
      magnitude = sqrt ((re *. re) +. (im *. im));
      phase_deg = Float.atan2 im re *. 180.0 /. Float.pi;
    }
  in
  let decades = log10 (f_stop /. f_start) in
  let npoints = Int.max 2 (1 + int_of_float (Float.round (decades *. float_of_int points_per_decade))) in
  let points =
    List.init npoints (fun i ->
        let t = float_of_int i /. float_of_int (npoints - 1) in
        solve_at (f_start *. (10.0 ** (decades *. t))))
  in
  let dc_gain = match points with p :: _ -> p.magnitude | [] -> 0.0 in
  { points; dc_gain }

let arrays response =
  let fs = Array.of_list (List.map (fun p -> p.freq_hz) response.points) in
  let mags = Array.of_list (List.map (fun p -> p.magnitude) response.points) in
  let phases = Array.of_list (List.map (fun p -> p.phase_deg) response.points) in
  (fs, mags, phases)

let f_3db response =
  let fs, mags, _ = arrays response in
  Lattice_numerics.Interp.first_crossing fs mags (response.dc_gain /. sqrt 2.0)

let phase_at response f =
  let fs, _, phases = arrays response in
  Lattice_numerics.Interp.lookup fs phases f

let magnitude_at response f =
  let fs, mags, _ = arrays response in
  Lattice_numerics.Interp.lookup fs mags f
