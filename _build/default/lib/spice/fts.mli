(** The six-transistor four-terminal switch model (paper Fig 9).

    The switch has four D/S terminals at the north, east, south and west
    sides plus a gate; the body is grounded and therefore dropped (paper
    Section V). Adjacent terminal pairs are bridged by Type A MOSFETs
    (effective L = 0.35 um on the square device) and the two opposite pairs
    by Type B MOSFETs (L = 0.5 um) — six transistors, all sharing the gate.
    Each terminal carries a 1 fF grounded capacitor estimated from TCAD. *)

type mosfet_types = {
  type_a : Lattice_mosfet.Model.t;  (** adjacent pairs *)
  type_b : Lattice_mosfet.Model.t;  (** opposite pairs *)
}

(** Parameters extracted from the square / HfO2 device (the values
    [Lattice_fit.Fit.extract] recovers; kept literal here so the circuit
    layer does not depend on the device layer). Level-1 models, as in the
    paper. *)
val default_types : mosfet_types

(** [make_types ~kp ~vth ~lambda] builds the two level-1 types with the
    square device's W = 700 nm and L = 0.35 / 0.5 um. *)
val make_types : kp:float -> vth:float -> lambda:float -> mosfet_types

(** [level3_types ?theta ?vmax ()] promotes the default extraction to the
    level-3 short-channel model (paper Section VI-A's planned refinement);
    see {!Lattice_mosfet.Level3.of_level1} for the defaults. *)
val level3_types : ?theta:float -> ?vmax:float -> unit -> mosfet_types

(** Default terminal capacitance, 1 fF. *)
val default_terminal_cap : float

(** [instantiate ckt ~name ~north ~east ~south ~west ~gate ?terminal_cap
    ?gate_cap types] adds the six MOSFETs and four terminal capacitors.
    Pass [terminal_cap = 0.0] to omit the capacitors. [gate_cap] (default
    0, i.e. the paper's model) is a total gate capacitance, split into four
    gate-to-terminal capacitors — the "more accurate transistor model
    having capacitor models" the paper leaves as future work. *)
val instantiate :
  Netlist.t ->
  name:string ->
  north:Netlist.node ->
  east:Netlist.node ->
  south:Netlist.node ->
  west:Netlist.node ->
  gate:Netlist.node ->
  ?terminal_cap:float ->
  ?gate_cap:float ->
  mosfet_types ->
  unit
