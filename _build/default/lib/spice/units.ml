let suffixes =
  [ ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6); ("m", 1e-3);
    ("k", 1e3); ("g", 1e9); ("t", 1e12) ]

let parse s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "" then invalid_arg "Units.parse: empty";
  let matches suffix = String.length s > String.length suffix
    && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix in
  let rec find = function
    | [] -> (s, 1.0)
    | (suffix, mult) :: rest ->
      if matches suffix then (String.sub s 0 (String.length s - String.length suffix), mult)
      else find rest
  in
  let body, mult = find suffixes in
  match float_of_string_opt body with
  | Some x -> x *. mult
  | None -> invalid_arg ("Units.parse: malformed value " ^ s)

let format x =
  if x = 0.0 then "0"
  else begin
    let sign = if x < 0.0 then "-" else "" in
    let mag = Float.abs x in
    let scales =
      [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1.0, ""); (1e-3, "m");
        (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]
    in
    let rec pick = function
      | [] -> (1e-15, "f")
      | (scale, _) :: rest when mag < scale && rest <> [] -> pick rest
      | (scale, suffix) :: _ -> (scale, suffix)
    in
    let scale, suffix = pick scales in
    let v = mag /. scale in
    let body =
      if Float.abs (v -. Float.round v) < 1e-9 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v
    in
    sign ^ body ^ suffix
  end
