module Level1 = Lattice_mosfet.Level1
module Matrix = Lattice_numerics.Matrix

type cap_companion = { geq : float array; ieq : float array }

let cap_count netlist =
  List.fold_left
    (fun acc e -> match e with Netlist.Capacitor _ -> acc + 1 | _ -> acc)
    0 (Netlist.elements netlist)

let voltage x node = if node = Netlist.ground then 0.0 else x.(Netlist.node_index node)

let cap_voltages netlist x =
  let out = ref [] in
  List.iter
    (function
      | Netlist.Capacitor { n1; n2; _ } -> out := (voltage x n1 -. voltage x n2) :: !out
      | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> ())
    (Netlist.elements netlist);
  Array.of_list (List.rev !out)

(* conductance stamp between two nodes *)
let stamp_conductance a n1 n2 g =
  let i1 = Netlist.node_index n1 and i2 = Netlist.node_index n2 in
  if i1 >= 0 then Matrix.add_to a i1 i1 g;
  if i2 >= 0 then Matrix.add_to a i2 i2 g;
  if i1 >= 0 && i2 >= 0 then begin
    Matrix.add_to a i1 i2 (-.g);
    Matrix.add_to a i2 i1 (-.g)
  end

(* current [i] flowing out of node [n1] into node [n2] through a source *)
let stamp_current b n1 n2 i =
  let i1 = Netlist.node_index n1 and i2 = Netlist.node_index n2 in
  if i1 >= 0 then b.(i1) <- b.(i1) -. i;
  if i2 >= 0 then b.(i2) <- b.(i2) +. i

let stamp_mosfet a b x ~gmin (m : Lattice_mosfet.Model.t) ~drain ~gate ~source =
  let vd = voltage x drain and vg = voltage x gate and vs = voltage x source in
  (* source/drain swap: the terminal at the lower potential acts as source *)
  let reversed = vd < vs in
  let dn, sn = if reversed then (source, drain) else (drain, source) in
  let v_dn = Float.max vd vs and v_sn = Float.min vd vs in
  let vgs = vg -. v_sn and vds = v_dn -. v_sn in
  let i = Lattice_mosfet.Model.ids m ~vgs ~vds in
  let gm = Lattice_mosfet.Model.gm m ~vgs ~vds in
  let gds = Lattice_mosfet.Model.gds m ~vgs ~vds in
  (* linearized drain current: i_dn = gm vgs' + gds vds' + ieq *)
  let ieq = i -. (gm *. vgs) -. (gds *. vds) in
  let idn = Netlist.node_index dn
  and isn = Netlist.node_index sn
  and ig = Netlist.node_index gate in
  let add r c v = if r >= 0 && c >= 0 then Matrix.add_to a r c v in
  if idn >= 0 then begin
    add idn ig gm;
    add idn idn gds;
    add idn isn (-.(gm +. gds));
    b.(idn) <- b.(idn) -. ieq
  end;
  if isn >= 0 then begin
    add isn ig (-.gm);
    add isn idn (-.gds);
    add isn isn (gm +. gds);
    b.(isn) <- b.(isn) +. ieq
  end;
  stamp_conductance a drain source gmin

let stamp netlist ~x ~time ~gmin ~gshunt ~source_scale ~caps =
  let n = Netlist.unknowns netlist in
  let a = Matrix.create n n in
  let b = Array.make n 0.0 in
  if gshunt > 0.0 then
    for i = 0 to Netlist.num_nodes netlist - 1 do
      Matrix.add_to a i i gshunt
    done;
  let cap_ordinal = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { n1; n2; ohms; _ } -> stamp_conductance a n1 n2 (1.0 /. ohms)
      | Netlist.Capacitor { n1; n2; _ } -> (
        let k = !cap_ordinal in
        incr cap_ordinal;
        match caps with
        | None -> ()
        | Some { geq; ieq } ->
          stamp_conductance a n1 n2 geq.(k);
          stamp_current b n1 n2 ieq.(k))
      | Netlist.Vsource { npos; nneg; wave; index; _ } ->
        let row = Netlist.vsource_row netlist index in
        let ip = Netlist.node_index npos and ineg = Netlist.node_index nneg in
        if ip >= 0 then begin
          Matrix.add_to a ip row 1.0;
          Matrix.add_to a row ip 1.0
        end;
        if ineg >= 0 then begin
          Matrix.add_to a ineg row (-1.0);
          Matrix.add_to a row ineg (-1.0)
        end;
        b.(row) <- b.(row) +. (source_scale *. Source.value wave time)
      | Netlist.Isource { npos; nneg; wave; _ } ->
        stamp_current b npos nneg (source_scale *. Source.value wave time)
      | Netlist.Mosfet { drain; gate; source; model; _ } ->
        stamp_mosfet a b x ~gmin model ~drain ~gate ~source)
    (Netlist.elements netlist);
  (a, b)
