(** Engineering-notation helpers for netlist values ("500k", "1f", "10n"). *)

(** [parse s] reads a float with an optional SPICE suffix
    (f, p, n, u, m, k, meg, g, t); case-insensitive.
    Raises [Invalid_argument] on malformed input. *)
val parse : string -> float

(** [format x] renders with the closest engineering suffix,
    e.g. [format 5e5 = "500k"], [format 1e-15 = "1f"]. *)
val format : float -> string
