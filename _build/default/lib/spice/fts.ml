module Level1 = Lattice_mosfet.Level1
module Model = Lattice_mosfet.Model

type mosfet_types = { type_a : Model.t; type_b : Model.t }

let level1_params ~kp ~vth ~lambda ~l = { Level1.kp; vth; lambda; w = 700e-9; l }

let make_types ~kp ~vth ~lambda =
  {
    type_a = Model.L1 (level1_params ~kp ~vth ~lambda ~l:0.35e-6);
    type_b = Model.L1 (level1_params ~kp ~vth ~lambda ~l:0.5e-6);
  }

(* square / HfO2 extraction (see Lattice_fit.Fit and EXPERIMENTS.md) *)
let default_kp = 1.77e-5

let default_vth = 0.155
let default_lambda = 0.05
let default_types = make_types ~kp:default_kp ~vth:default_vth ~lambda:default_lambda

let level3_types ?theta ?vmax () =
  let promote l =
    Model.L3
      (Lattice_mosfet.Level3.of_level1 ?theta ?vmax
         (level1_params ~kp:default_kp ~vth:default_vth ~lambda:default_lambda ~l))
  in
  { type_a = promote 0.35e-6; type_b = promote 0.5e-6 }

let default_terminal_cap = 1e-15

let instantiate ckt ~name ~north ~east ~south ~west ~gate ?(terminal_cap = default_terminal_cap)
    ?(gate_cap = 0.0) types =
  let fet suffix d s model =
    Netlist.mosfet_model ckt (Printf.sprintf "%s.%s" name suffix) ~drain:d ~gate ~source:s model
  in
  (* four Type A edges *)
  fet "MA_ne" north east types.type_a;
  fet "MA_es" east south types.type_a;
  fet "MA_sw" south west types.type_a;
  fet "MA_wn" west north types.type_a;
  (* two Type B diagonals *)
  fet "MB_ns" north south types.type_b;
  fet "MB_ew" east west types.type_b;
  if terminal_cap > 0.0 then begin
    let cap suffix n =
      Netlist.capacitor ckt (Printf.sprintf "%s.C%s" name suffix) n Netlist.ground terminal_cap
    in
    cap "n" north;
    cap "e" east;
    cap "s" south;
    cap "w" west
  end;
  if gate_cap > 0.0 then begin
    let gcap suffix n =
      Netlist.capacitor ckt (Printf.sprintf "%s.Cg%s" name suffix) gate n (gate_cap /. 4.0)
    in
    gcap "n" north;
    gcap "e" east;
    gcap "s" south;
    gcap "w" west
  end
