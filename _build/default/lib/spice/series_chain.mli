(** Series-connected four-terminal switches — the drive-strength experiment
    of paper Fig 12.

    [n] switches are stacked vertically (north of switch k+1 = south of
    switch k); every gate is tied to the gate bias (1.2 V in the paper so
    all switches are ON), the bottom terminal is grounded and a voltage
    source drives the top terminal. *)

type t = {
  netlist : Netlist.t;
  supply_index : int;  (** voltage-source index of the top driver *)
}

(** [build ~n ?types ?gate_v ?terminal_cap ~v_top ()] constructs the chain.
    Defaults: [Fts.default_types], [gate_v = 1.2], 1 fF terminal caps. *)
val build :
  n:int ->
  ?types:Fts.mosfet_types ->
  ?gate_v:float ->
  ?terminal_cap:float ->
  v_top:float ->
  unit ->
  t

(** [current ~n ?types ?gate_v ~v_top ()] is the DC current drawn through
    the chain at the given top voltage (positive for conduction), A —
    one point of Fig 12a. *)
val current : n:int -> ?types:Fts.mosfet_types -> ?gate_v:float -> v_top:float -> unit -> float

(** [voltage_for_current ~n ?types ?gate_v ~i_target ()] finds by bisection
    the top voltage at which the chain conducts [i_target] — one point of
    Fig 12b. Searches in [0 .. 20 V]. *)
val voltage_for_current :
  n:int -> ?types:Fts.mosfet_types -> ?gate_v:float -> i_target:float -> unit -> float
