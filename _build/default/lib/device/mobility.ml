(* m^2/(V s); 1 m^2/(V s) = 1e4 cm^2/(V s) *)
let enhancement = function
  | Material.HfO2 -> 0.0024 (* 24 cm^2/Vs: strong remote-phonon degradation *)
  | Material.SiO2 -> 0.0070 (* 70 cm^2/Vs *)

let junctionless = 0.0050 (* 50 cm^2/Vs at ~4e20 cm^-3 doping *)
