let q = 1.602176634e-19
let eps0 = 8.8541878128e-12
let k_boltzmann = 1.380649e-23
let temperature = 300.0
let thermal_voltage = k_boltzmann *. temperature /. q
let ni_si = 1.5e16 (* 1.5e10 cm^-3 *)
let eps_si = 11.7 *. eps0
