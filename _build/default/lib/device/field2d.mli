(** Two-dimensional finite-difference conduction solver — the substitute
    for the paper's TCAD current-density vector profiles (Fig 8).

    The device footprint is discretized into an [n x n] cell-centred grid
    with a per-cell conductivity: high in the four electrodes, gate-bias
    dependent in the channel region (whose shape follows the gate: square
    block, cross arms, or the whole wire), and near-insulating elsewhere.
    Solving [div (sigma grad V) = 0] with Dirichlet conditions on the
    electrodes (drain at [vds], sources at 0) by conjugate gradients yields
    the potential, the current-density field [J = -sigma grad V], the
    per-terminal currents and a uniformity metric — the paper's qualitative
    claim being that the cross gate spreads the current far more uniformly
    across terminals than the square gate. *)

type result = {
  n : int;  (** grid edge (cells) *)
  potential : float array;  (** n*n, row-major, volts *)
  jx : float array;  (** current density x-component per cell *)
  jy : float array;
  terminal_currents : float array;  (** into T1..T4, A (per unit depth) *)
  channel_cv : float;  (** coefficient of variation of |J| over channel cells *)
  source_share_cv : float;  (** CV of the per-source current split *)
  cg_iterations : int;
  converged : bool;
}

(** [solve ?n variant ~case ~vgs ~vds] runs the solver ([n] defaults
    to 48). Raises [Invalid_argument] for an invalid case. *)
val solve :
  ?n:int -> Presets.variant -> case:Op_case.t -> vgs:float -> vds:float -> result

(** [ascii result ~width] renders the current-density magnitude as an ASCII
    heat map (characters [" .:-=+*#%@"]), for terminal output. *)
val ascii : result -> width:int -> string
