(** Gate-stack and semiconductor materials (paper Table II uses SiO2 and
    HfO2 gate dielectrics on Si). *)

type gate_dielectric = SiO2 | HfO2

(** [relative_permittivity d] — 3.9 for SiO2; 25 for HfO2 (the high end of
    the reported 18-25 range, which reproduces the paper's threshold
    voltages best). *)
val relative_permittivity : gate_dielectric -> float

(** [oxide_capacitance d ~tox] is the areal gate capacitance
    [eps0 * k / tox], F/m^2. *)
val oxide_capacitance : gate_dielectric -> tox:float -> float

(** [eot d ~tox] is the equivalent (SiO2) oxide thickness, m. *)
val eot : gate_dielectric -> tox:float -> float

(** [name d] is ["SiO2"] or ["HfO2"]. *)
val name : gate_dielectric -> string

(** [of_name s] parses (case-insensitive); raises [Invalid_argument]. *)
val of_name : string -> gate_dielectric

(** [fermi_potential_p ~na] is the p-substrate Fermi potential
    [VT ln (Na/ni)], V, for acceptor density [na] in 1/m^3. *)
val fermi_potential_p : na:float -> float

(** [depletion_width_max ~na] is the maximum depletion width at strong
    inversion [sqrt (2 eps_si 2 phi_F / (q Na))], m. *)
val depletion_width_max : na:float -> float

(** [bulk_charge_max ~na] is the depletion charge at strong inversion
    [sqrt (2 q eps_si Na 2 phi_F)], C/m^2. *)
val bulk_charge_max : na:float -> float
