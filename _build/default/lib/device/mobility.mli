(** Effective channel mobilities, m^2/(V s).

    These are the calibration knobs of the compact model (one scalar per
    gate stack), standing in for everything the 3-D TCAD transport solver
    knows that a compact model does not: vertical-field degradation, remote
    phonon scattering under the high-k stack, series resistance. Values are
    chosen so the square device's DSSS drain current at VGS = VDS = 5 V
    lands on the paper's Fig 5 magnitude (~1.2 mA for HfO2), with the usual
    ~2-4x high-k degradation relative to SiO2. The junctionless wire uses a
    heavily-doped bulk mobility. *)

(** [enhancement d] — effective inversion-layer mobility under a SiO2 or
    HfO2 gate. *)
val enhancement : Material.gate_dielectric -> float

(** [junctionless] — bulk mobility of the degenerately doped nanowire. *)
val junctionless : float
