module Level1 = Lattice_mosfet.Level1

type t = {
  geometry : Geometry.t;
  dielectric : Material.gate_dielectric;
  vth : float;
  ideality : float;
  kp : float;
  lambda : float;
  floor : float;
  sat_cap : float;
}

let j0_floor = 8.6e3

(* effective saturation velocity of the degenerate wire including the
   accumulation-layer contribution (see DESIGN.md calibration notes) *)
let vsat_junctionless = 2.6e5

let make ~geometry ~dielectric =
  let cox = Material.oxide_capacitance dielectric ~tox:geometry.Geometry.tox in
  let vth = Threshold.vth ~dielectric ~geometry in
  let ideality = Threshold.subthreshold_ideality ~dielectric ~geometry in
  let floor = j0_floor *. geometry.Geometry.junction_area in
  if Geometry.is_depletion geometry then begin
    (* conductance-derived gain: the wire conducts G_on = q Nd mu A / L when
       neutral and loses conductance linearly as the gate depletes it, which
       is exactly a level-1 triode slope with beta = G_on / (VFB - Vth) *)
    let g = geometry in
    let a = g.Geometry.wire_cross_section in
    let g_on =
      Constants.q *. Threshold.nd_junctionless *. Mobility.junctionless *. a
      /. g.Geometry.l_adjacent
    in
    let beta = g_on /. (Threshold.phi_ms_junctionless -. vth) in
    (* store beta as kp with W/L = 1 (see pair_params) *)
    let sat_cap = Constants.q *. Threshold.nd_junctionless *. vsat_junctionless *. a in
    { geometry; dielectric; vth; ideality; kp = beta; lambda = 0.02; floor; sat_cap }
  end
  else begin
    let kp = Mobility.enhancement dielectric *. cox in
    { geometry; dielectric; vth; ideality; kp; lambda = 0.05; floor; sat_cap = infinity }
  end

let pair_params m ~opposite =
  let g = m.geometry in
  if Geometry.is_depletion g then
    (* beta folded into kp; W/L = 1 *)
    { Level1.kp = m.kp; vth = m.vth; lambda = m.lambda; w = 1.0; l = 1.0 }
  else
    {
      Level1.kp = m.kp;
      vth = m.vth;
      lambda = m.lambda;
      w = g.Geometry.channel_width;
      l = (if opposite then g.Geometry.l_opposite else g.Geometry.l_adjacent);
    }

let subthreshold_current m ~beta ~vgs ~vds =
  let vt = Constants.thermal_voltage in
  let n = m.ideality in
  let i0 = 2.0 *. n *. beta *. vt *. vt in
  let drive = exp ((vgs -. m.vth) /. (n *. vt)) in
  (* drain-bias factor saturates within a few VT *)
  let dibl = 1.0 -. exp (-.vds /. vt) in
  i0 *. drive *. dibl

let pair_current m ~opposite ~vgs ~vds =
  if vds < 0.0 then invalid_arg "Device_model.pair_current: vds must be >= 0";
  let p = pair_params m ~opposite in
  let beta = Level1.beta p in
  let i =
    if vgs > m.vth then Level1.ids p ~vgs ~vds
    else subthreshold_current m ~beta ~vgs ~vds
  in
  Float.min i m.sat_cap

(* The saturation ceiling is a property of one electrode's wire
   cross-section, so it binds the *total* current of a drain, not each pair
   independently; when it binds, the pair contributions shrink
   proportionally. *)
let terminal_currents m ~case ~vgs ~vds =
  if not (Op_case.is_valid case) then invalid_arg "Device_model: case needs a drain and a source";
  if vds < 0.0 then invalid_arg "Device_model.terminal_currents: vds must be >= 0";
  let out = Array.make 4 0.0 in
  List.iter
    (fun d ->
      let contributions =
        List.filter_map
          (fun (d', s, opposite) ->
            if d' = d then Some (s, pair_current m ~opposite ~vgs ~vds) else None)
          (Op_case.pairs case)
      in
      let total = List.fold_left (fun acc (_, i) -> acc +. i) 0.0 contributions in
      let scale = if total > m.sat_cap then m.sat_cap /. total else 1.0 in
      List.iter
        (fun (s, i) ->
          out.(d) <- out.(d) +. (scale *. i);
          out.(s) <- out.(s) -. (scale *. i))
        contributions)
    (Op_case.drains case);
  (* junction-generation floor collected at each biased drain *)
  let floor_on = Float.min 1.0 (vds /. 0.1) in
  List.iter (fun d -> out.(d) <- out.(d) +. (m.floor *. floor_on)) (Op_case.drains case);
  out

let ion m =
  let i = terminal_currents m ~case:Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  i.(0)

let ioff m =
  let vgs = if Geometry.is_depletion m.geometry then -5.0 else 0.0 in
  let i = terminal_currents m ~case:Op_case.dsss ~vgs ~vds:5.0 in
  i.(0)

let on_off_ratio m = ion m /. ioff m

let pp fmt m =
  Format.fprintf fmt "%s/%s: Vth=%.3g V, n=%.3f, Kp=%.3g A/V^2, Ion=%.3g A, Ioff=%.3g A, on/off=%.2g"
    (Geometry.shape_name m.geometry.Geometry.shape)
    (Material.name m.dielectric) m.vth m.ideality m.kp (ion m) (ioff m) (on_off_ratio m)
