(** Device geometries from paper Table II.

    All three devices have four electrodes (T1..T4) on the north / east /
    south / west sides of a square footprint and a central gate:

    - {b Square}: enhancement type; 2400 x 2400 x 730 nm body, 700 x 200 x
      200 nm electrodes, 1000 x 1000 x 30 nm square gate.
    - {b Cross}: enhancement type; as square but with a cross-shaped gate of
      200 nm arm width, which equalizes the six terminal-pair channels.
    - {b Junctionless}: depletion type; 24 x 24 x 8 nm body, 24 x 2 x 2 nm
      electrodes, 4 x 4 x 3 nm all-around gate over an n-type nanowire.

    The six terminal pairs [C(4,2)] fall into two classes: four {e adjacent}
    pairs (N-E, E-S, S-W, W-N) and two {e opposite} pairs (N-S, E-W). The
    effective channel lengths below are the ones the paper extracts for its
    two MOSFET types (Type A 0.35 um adjacent, Type B 0.5 um opposite for
    the square device). *)

type shape = Square | Cross | Junctionless

type t = {
  shape : shape;
  device_x : float;  (** footprint edge, m *)
  device_y : float;
  device_z : float;  (** body thickness, m *)
  electrode_w : float;  (** electrode width along its side, m *)
  electrode_d : float;  (** electrode depth into the body, m *)
  tox : float;  (** gate dielectric thickness, m *)
  gate_extent : float;  (** gate edge (square) or arm width (cross), m *)
  channel_width : float;  (** effective per-pair channel width W, m *)
  l_adjacent : float;  (** effective L, adjacent pairs (Type A), m *)
  l_opposite : float;  (** effective L, opposite pairs (Type B), m *)
  junction_area : float;  (** drain-junction area for the leakage floor, m^2 *)
  wire_cross_section : float;  (** conduction cross-section (junctionless), m^2 *)
}

(** The Table II devices. *)
val square : t

val cross : t
val junctionless : t

val of_shape : shape -> t
val shape_name : shape -> string
val shape_of_name : string -> shape

(** [is_depletion g] — [true] only for the junctionless device. *)
val is_depletion : t -> bool

(** [w_over_l g ~opposite] is the channel aspect ratio of a pair. *)
val w_over_l : t -> opposite:bool -> float

(** [symmetry_spread g] is [(l_opposite - l_adjacent) / l_adjacent], a
    geometric proxy for the paper's observation that the cross device is
    more symmetric than the square one. *)
val symmetry_spread : t -> float
