lib/device/threshold.ml: Constants Float Geometry Material
