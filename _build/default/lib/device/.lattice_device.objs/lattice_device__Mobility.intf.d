lib/device/mobility.mli: Material
