lib/device/op_case.mli:
