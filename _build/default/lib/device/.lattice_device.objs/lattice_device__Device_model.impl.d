lib/device/device_model.ml: Array Constants Float Format Geometry Lattice_mosfet List Material Mobility Op_case Threshold
