lib/device/field2d.ml: Array Buffer Device_model Float Fun Geometry Int Lattice_numerics List Op_case Presets String Threshold
