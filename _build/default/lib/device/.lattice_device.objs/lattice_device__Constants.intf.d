lib/device/constants.mli:
