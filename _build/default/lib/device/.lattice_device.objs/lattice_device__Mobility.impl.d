lib/device/mobility.ml: Material
