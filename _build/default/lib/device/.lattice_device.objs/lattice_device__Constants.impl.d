lib/device/constants.ml:
