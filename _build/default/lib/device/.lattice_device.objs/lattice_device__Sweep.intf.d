lib/device/sweep.mli: Device_model Op_case
