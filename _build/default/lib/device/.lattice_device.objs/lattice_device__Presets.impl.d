lib/device/presets.ml: Buffer Device_model Geometry List Material Printf
