lib/device/geometry.ml: String
