lib/device/geometry.mli:
