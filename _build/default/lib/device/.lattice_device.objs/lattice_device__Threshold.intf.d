lib/device/threshold.mli: Geometry Material
