lib/device/op_case.ml: Array List Printf String
