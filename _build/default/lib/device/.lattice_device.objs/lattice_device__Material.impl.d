lib/device/material.ml: Constants String
