lib/device/material.mli:
