lib/device/device_model.mli: Format Geometry Lattice_mosfet Material Op_case
