lib/device/sweep.ml: Array Device_model Float Lattice_numerics List Op_case
