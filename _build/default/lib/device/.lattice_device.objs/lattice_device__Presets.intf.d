lib/device/presets.mli: Device_model Geometry Material
