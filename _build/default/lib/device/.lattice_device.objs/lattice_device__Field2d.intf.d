lib/device/field2d.mli: Op_case Presets
