(** Physical constants (SI) at T = 300 K. *)

val q : float
(** elementary charge, C *)

val eps0 : float
(** vacuum permittivity, F/m *)

val k_boltzmann : float
(** Boltzmann constant, J/K *)

val temperature : float
(** operating temperature, K *)

val thermal_voltage : float
(** kT/q at 300 K, V (~25.85 mV) *)

val ni_si : float
(** silicon intrinsic carrier concentration at 300 K, 1/m^3 *)

val eps_si : float
(** silicon permittivity, F/m *)
