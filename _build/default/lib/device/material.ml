type gate_dielectric = SiO2 | HfO2

let relative_permittivity = function SiO2 -> 3.9 | HfO2 -> 25.0

let oxide_capacitance d ~tox =
  if tox <= 0.0 then invalid_arg "Material.oxide_capacitance: tox must be > 0";
  Constants.eps0 *. relative_permittivity d /. tox

let eot d ~tox = tox *. 3.9 /. relative_permittivity d

let name = function SiO2 -> "SiO2" | HfO2 -> "HfO2"

let of_name s =
  match String.lowercase_ascii s with
  | "sio2" -> SiO2
  | "hfo2" -> HfO2
  | _ -> invalid_arg ("Material.of_name: unknown dielectric " ^ s)

let fermi_potential_p ~na =
  if na <= Constants.ni_si then invalid_arg "Material.fermi_potential_p: Na below ni";
  Constants.thermal_voltage *. log (na /. Constants.ni_si)

let depletion_width_max ~na =
  let phi_f = fermi_potential_p ~na in
  sqrt (2.0 *. Constants.eps_si *. 2.0 *. phi_f /. (Constants.q *. na))

let bulk_charge_max ~na =
  let phi_f = fermi_potential_p ~na in
  sqrt (2.0 *. Constants.q *. Constants.eps_si *. na *. 2.0 *. phi_f)
