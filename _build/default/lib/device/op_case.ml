type role = Drain | Source | Floating

type t = role array

let role_of_char = function
  | 'D' | 'd' -> Drain
  | 'S' | 's' -> Source
  | 'F' | 'f' -> Floating
  | c -> invalid_arg (Printf.sprintf "Op_case: bad role %C" c)

let char_of_role = function Drain -> 'D' | Source -> 'S' | Floating -> 'F'

let of_string s =
  if String.length s <> 4 then invalid_arg "Op_case.of_string: need 4 letters";
  Array.init 4 (fun i -> role_of_char s.[i])

let to_string c = String.init 4 (fun i -> char_of_role c.(i))

let all =
  List.map of_string
    [
      "DSFF"; "SFDF";
      "DSSS"; "SDSS"; "SSDS"; "SSSD";
      "DDSS"; "SDDS"; "DSDS"; "DSSD"; "SDSD"; "SSDD";
      "DDDS"; "SDDD"; "DDSD"; "DSDD";
    ]

let dsss = of_string "DSSS"

let indices_with role c =
  List.filter (fun i -> c.(i) = role) [ 0; 1; 2; 3 ]

let drains c = indices_with Drain c
let sources c = indices_with Source c

let opposite i j = (i + 2) mod 4 = j || (j + 2) mod 4 = i

let pairs c =
  List.concat_map (fun d -> List.map (fun s -> (d, s, opposite d s)) (sources c)) (drains c)

let is_valid c = drains c <> [] && sources c <> []
