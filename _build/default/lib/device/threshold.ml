let na_substrate = 1e23 (* 1e17 cm^-3 *)
let nd_junctionless = 3.6e26 (* 3.6e20 cm^-3: degenerate wire, see DESIGN.md *)
let phi_ms_enhancement = -0.88
let phi_ms_junctionless = 0.49

let narrow_width_correction ~cox ~geometry =
  (* fringing depletion charge of a narrow gate: pi * eps_si * 2 phi_F /
     (2 W Cox); negligible for the 700 nm square channel, ~0.1 V (HfO2) for
     the 200 nm cross arms *)
  let phi_f = Material.fermi_potential_p ~na:na_substrate in
  let w = geometry.Geometry.channel_width in
  Float.pi *. Constants.eps_si *. 2.0 *. phi_f /. (2.0 *. w *. cox)

let enhancement ~dielectric ~geometry =
  if Geometry.is_depletion geometry then
    invalid_arg "Threshold.enhancement: junctionless geometry";
  let cox = Material.oxide_capacitance dielectric ~tox:geometry.Geometry.tox in
  let phi_f = Material.fermi_potential_p ~na:na_substrate in
  let qdep = Material.bulk_charge_max ~na:na_substrate in
  let dv_nw =
    match geometry.Geometry.shape with
    | Geometry.Cross -> narrow_width_correction ~cox ~geometry
    | Geometry.Square | Geometry.Junctionless -> 0.0
  in
  phi_ms_enhancement +. (2.0 *. phi_f) +. (qdep /. cox) +. dv_nw

let junctionless ~dielectric =
  let g = Geometry.junctionless in
  let cox = Material.oxide_capacitance dielectric ~tox:g.Geometry.tox in
  let t = g.Geometry.channel_width in
  let qnd = Constants.q *. nd_junctionless in
  phi_ms_junctionless
  -. (qnd *. t *. t /. (8.0 *. Constants.eps_si))
  -. (qnd *. (t /. 2.0) /. cox)

let vth ~dielectric ~geometry =
  if Geometry.is_depletion geometry then junctionless ~dielectric
  else enhancement ~dielectric ~geometry

let subthreshold_ideality ~dielectric ~geometry =
  let cox = Material.oxide_capacitance dielectric ~tox:geometry.Geometry.tox in
  if Geometry.is_depletion geometry then 1.05
  else begin
    let wd = Material.depletion_width_max ~na:na_substrate in
    let cdep = Constants.eps_si /. wd in
    1.0 +. (cdep /. cox)
  end
