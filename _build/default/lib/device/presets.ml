type variant = {
  geometry : Geometry.t;
  dielectric : Material.gate_dielectric;
  model : Device_model.t;
}

let make geometry dielectric =
  { geometry; dielectric; model = Device_model.make ~geometry ~dielectric }

let all =
  List.concat_map
    (fun g -> List.map (make g) [ Material.HfO2; Material.SiO2 ])
    [ Geometry.square; Geometry.cross; Geometry.junctionless ]

let find ~shape ~dielectric =
  match
    List.find_opt (fun v -> v.geometry.Geometry.shape = shape && v.dielectric = dielectric) all
  with
  | Some v -> v
  | None -> invalid_arg "Presets.find: unknown variant"

let variant_name v =
  Printf.sprintf "%s/%s" (Geometry.shape_name v.geometry.Geometry.shape) (Material.name v.dielectric)

(* Paper Section III-B: threshold voltages and on/off ratios per variant. *)
let paper_figures_of_merit =
  [
    ("square/HfO2", 0.16, 1e6);
    ("square/SiO2", 1.36, 1e5);
    ("cross/HfO2", 0.27, 1e6);
    ("cross/SiO2", 1.76, 1e4);
    ("junctionless/HfO2", -0.57, 1e8);
    ("junctionless/SiO2", -4.8, 1e7);
  ]

let nm x = x /. 1e-9

let render_table2 () =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-22s %-28s %-28s %-22s" "" "Square (enh.)" "Cross (enh.)" "Junctionless (dep.)";
  let dims g =
    Printf.sprintf "%.0f x %.0f x %.0f" (nm g.Geometry.device_x) (nm g.Geometry.device_y)
      (nm g.Geometry.device_z)
  in
  let elec g =
    Printf.sprintf "%.0f x %.0f x %.0f" (nm g.Geometry.electrode_w) (nm g.Geometry.electrode_w /. 3.5)
      (nm g.Geometry.electrode_d)
  in
  let sq = Geometry.square and cr = Geometry.cross and jl = Geometry.junctionless in
  line "%-22s %-28s %-28s %-22s" "Device size (nm)" (dims sq) (dims cr) (dims jl);
  line "%-22s %-28s %-28s %-22s" "Electrode size (nm)" (elec sq) (elec cr)
    (Printf.sprintf "%.0f x %.0f x %.0f" (nm jl.Geometry.electrode_w) (nm jl.Geometry.channel_width)
       (nm jl.Geometry.electrode_d));
  line "%-22s %-28s %-28s %-22s" "Gate size (nm)"
    (Printf.sprintf "%.0f x %.0f x %.0f" (nm sq.Geometry.gate_extent) (nm sq.Geometry.gate_extent)
       (nm sq.Geometry.tox))
    (Printf.sprintf "W:%.0f, H:%.0f" (nm cr.Geometry.gate_extent) (nm cr.Geometry.tox))
    (Printf.sprintf "%.0f x %.0f x %.0f" (nm jl.Geometry.gate_extent) (nm jl.Geometry.gate_extent)
       (nm jl.Geometry.tox));
  line "%-22s %-28s %-28s %-22s" "Substrate doping" "B, 1e17 cm^-3" "B, 1e17 cm^-3" "- (SiO2 body)";
  line "%-22s %-28s %-28s %-22s" "Electrode doping" "P, 1e20 cm^-3" "P, 1e20 cm^-3" "P, 1e20 cm^-3";
  line "%-22s %-28s %-28s %-22s" "Gate material" "SiO2 / HfO2" "SiO2 / HfO2" "SiO2 / HfO2";
  line "%-22s %-28s %-28s %-22s" "Electrode material" "n-type Si" "n-type Si" "n-type Si";
  Buffer.contents buf
