(** Compact electrical model of a four-terminal device — the stand-in for
    the paper's 3-D TCAD transport solver.

    Above threshold each (drain, source) terminal pair conducts as a level-1
    MOSFET whose parameters derive from the gate stack ([Kp = mu * Cox]) and
    the pair geometry ([W/L] of adjacent vs opposite pairs). Below threshold
    a textbook exponential subthreshold current with ideality
    [n = 1 + Cdep/Cox] takes over, and a junction-generation floor
    [J0 * junction area] bounds the off current (TCAD reports such a floor
    at VDS = 5 V; [j0_floor] is calibrated once, globally). The junctionless
    wire additionally saturates at the bulk current limit
    [q Nd v_sat A_wire] — a physical ceiling a level-1 expression lacks.

    Figures of merit follow the paper's definitions: [Ion] is the drain
    current at VGS = 5 V, VDS = 5 V in the DSSS case; [Ioff] at VGS = 0 for
    the enhancement devices, and at the sweep minimum VGS = -5 V for the
    depletion-mode junctionless device. *)

type t = {
  geometry : Geometry.t;
  dielectric : Material.gate_dielectric;
  vth : float;
  ideality : float;
  kp : float;  (** A/V^2 *)
  lambda : float;  (** 1/V *)
  floor : float;  (** off-current floor, A *)
  sat_cap : float;  (** bulk saturation ceiling, A; [infinity] if none *)
}

(** Calibrated junction-generation current density, A/m^2. *)
val j0_floor : float

(** [make ~geometry ~dielectric] assembles the model. *)
val make : geometry:Geometry.t -> dielectric:Material.gate_dielectric -> t

(** [pair_params m ~opposite] is the level-1 parameter record of one
    terminal pair (Type A when adjacent, Type B when opposite). *)
val pair_params : t -> opposite:bool -> Lattice_mosfet.Level1.params

(** [pair_current m ~opposite ~vgs ~vds] is one pair's current including the
    subthreshold branch and the saturation ceiling (excludes the floor,
    which is per-drain). [vds >= 0]. *)
val pair_current : t -> opposite:bool -> vgs:float -> vds:float -> float

(** [terminal_currents m ~case ~vgs ~vds] is the current into each of
    T1..T4 (A): drains biased at [vds], sources grounded, floating
    terminals carry none. Each drain additionally collects the junction
    floor. Gate is at [vgs] relative to the sources. *)
val terminal_currents : t -> case:Op_case.t -> vgs:float -> vds:float -> float array

(** [ion m] / [ioff m] / [on_off_ratio m] — paper figures of merit
    (DSSS, T1). *)
val ion : t -> float

val ioff : t -> float
val on_off_ratio : t -> float

val pp : Format.formatter -> t -> unit
