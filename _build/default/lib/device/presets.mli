(** The six device variants evaluated in the paper (three geometries times
    two gate dielectrics) and a renderer for Table II. *)

type variant = {
  geometry : Geometry.t;
  dielectric : Material.gate_dielectric;
  model : Device_model.t;
}

(** All six variants in the paper's order: square, cross, junctionless, each
    with HfO2 then SiO2. *)
val all : variant list

(** [find ~shape ~dielectric] looks a variant up. *)
val find : shape:Geometry.shape -> dielectric:Material.gate_dielectric -> variant

(** [variant_name v] is e.g. ["square/HfO2"]. *)
val variant_name : variant -> string

(** Paper text figures of merit for regression: [(variant name,
    expected Vth in V, expected on/off ratio)]. *)
val paper_figures_of_merit : (string * float * float) list

(** [render_table2 ()] formats the structural-feature table (paper
    Table II). *)
val render_table2 : unit -> string
