(** Threshold-voltage models.

    Enhancement devices (square, cross) follow the textbook long-channel MOS
    expression

    {v Vth = phi_ms + 2 phi_F + Qdep_max / Cox + dVnw v}

    with a narrow-width correction [dVnw] for the cross gate whose 200 nm
    arms leave a significant fringing depletion charge per unit width. The
    gate work-function difference [phi_ms] is the single calibrated constant
    (-0.88 V), chosen so the square device lands on the paper's TCAD values
    (0.16 V HfO2 / 1.36 V SiO2); everything else is physics of the Table II
    doping and stack.

    The junctionless nanowire is a depletion device: it conducts at
    [VGS = 0] and turns off at the negative voltage that fully depletes the
    wire,

    {v Vth = phi_ms_jl - q Nd t^2 / (8 eps_si) - q Nd (t/2) / Cox v}

    (double-gate full-depletion form with body thickness [t]). The paper's
    -0.57 V (HfO2) and -4.8 V (SiO2) emerge from the 1/Cox term. *)

(** Substrate acceptor doping of the enhancement devices (Table II:
    boron 1e17 cm^-3), 1/m^3. *)
val na_substrate : float

(** Effective donor doping of the junctionless wire, 1/m^3. *)
val nd_junctionless : float

(** Calibrated gate work-function difference for the enhancement stack, V. *)
val phi_ms_enhancement : float

(** Calibrated gate work-function difference for the junctionless stack, V. *)
val phi_ms_junctionless : float

(** [enhancement ~dielectric ~geometry] is the threshold voltage of a
    square or cross device; raises [Invalid_argument] for the junctionless
    geometry. *)
val enhancement : dielectric:Material.gate_dielectric -> geometry:Geometry.t -> float

(** [junctionless ~dielectric] is the (negative) junctionless threshold. *)
val junctionless : dielectric:Material.gate_dielectric -> float

(** [vth ~dielectric ~geometry] dispatches on the geometry's type. *)
val vth : dielectric:Material.gate_dielectric -> geometry:Geometry.t -> float

(** [subthreshold_ideality ~dielectric ~geometry] is
    [n = 1 + Cdep/Cox] (clamped to 1 for the fully-depleted junctionless
    wire, which has near-ideal gate coupling). *)
val subthreshold_ideality : dielectric:Material.gate_dielectric -> geometry:Geometry.t -> float
