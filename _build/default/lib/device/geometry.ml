type shape = Square | Cross | Junctionless

type t = {
  shape : shape;
  device_x : float;
  device_y : float;
  device_z : float;
  electrode_w : float;
  electrode_d : float;
  tox : float;
  gate_extent : float;
  channel_width : float;
  l_adjacent : float;
  l_opposite : float;
  junction_area : float;
  wire_cross_section : float;
}

let nm x = x *. 1e-9

let square =
  {
    shape = Square;
    device_x = nm 2400.0;
    device_y = nm 2400.0;
    device_z = nm 730.0;
    electrode_w = nm 700.0;
    electrode_d = nm 200.0;
    tox = nm 30.0;
    gate_extent = nm 1000.0;
    channel_width = nm 700.0;
    (* effective channel lengths the paper extracts: Type A / Type B *)
    l_adjacent = 0.35e-6;
    l_opposite = 0.5e-6;
    junction_area = nm 700.0 *. nm 200.0;
    wire_cross_section = 0.0;
  }

let cross =
  {
    square with
    shape = Cross;
    gate_extent = nm 200.0;
    (* the cross gate narrows the channels to the arm width and makes the
       six paths nearly equal in length *)
    channel_width = nm 200.0;
    l_adjacent = 0.40e-6;
    l_opposite = 0.42e-6;
  }

let junctionless =
  {
    shape = Junctionless;
    device_x = nm 24.0;
    device_y = nm 24.0;
    device_z = nm 8.0;
    electrode_w = nm 24.0;
    electrode_d = nm 2.0;
    tox = nm 3.0;
    gate_extent = nm 4.0;
    channel_width = nm 2.0;
    l_adjacent = nm 20.0;
    l_opposite = nm 20.0;
    junction_area = nm 24.0 *. nm 2.0;
    wire_cross_section = nm 2.0 *. nm 2.0;
  }

let of_shape = function Square -> square | Cross -> cross | Junctionless -> junctionless

let shape_name = function Square -> "square" | Cross -> "cross" | Junctionless -> "junctionless"

let shape_of_name s =
  match String.lowercase_ascii s with
  | "square" -> Square
  | "cross" -> Cross
  | "junctionless" | "jl" -> Junctionless
  | _ -> invalid_arg ("Geometry.shape_of_name: unknown shape " ^ s)

let is_depletion g = g.shape = Junctionless

let w_over_l g ~opposite =
  g.channel_width /. (if opposite then g.l_opposite else g.l_adjacent)

let symmetry_spread g = (g.l_opposite -. g.l_adjacent) /. g.l_adjacent
