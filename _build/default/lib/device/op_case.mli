(** Terminal-role configurations of a four-terminal device.

    The paper explores 16 cases where each of T1..T4 acts as drain (D),
    source (S) or floats (F): one drain - one source (DSFF, SFDF), one
    drain - three sources (DSSS, SDSS, SSDS, SSSD), two - two (DDSS, SDDS,
    DSDS, DSSD, SDSD, SSDD) and three drains - one source (DDDS, SDDD,
    DDSD, DSDD). Terminals sit at the north (T1), east (T2), south (T3) and
    west (T4) sides, so pairs (T1,T3) and (T2,T4) are opposite and the rest
    adjacent. *)

type role = Drain | Source | Floating

type t = role array  (** length 4, index i = terminal T(i+1) *)

(** [of_string "DSSS"] parses a 4-letter case name (D/S/F, any case). *)
val of_string : string -> t

val to_string : t -> string

(** [all] is the paper's 16-case list, in its order. *)
val all : t list

(** [dsss] — the case used for every figure in the paper. *)
val dsss : t

(** [drains c] / [sources c] list terminal indices (0-based) by role. *)
val drains : t -> int list

val sources : t -> int list

(** [pairs c] lists all conducting (drain, source) terminal pairs together
    with whether the pair is geometrically opposite. *)
val pairs : t -> (int * int * bool) list

(** [opposite i j] — [true] when terminals [i] and [j] face each other. *)
val opposite : int -> int -> bool

(** [is_valid c] — at least one drain and one source. *)
val is_valid : t -> bool
