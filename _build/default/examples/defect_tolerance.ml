(* Defect analysis and defect-aware remapping: the testing track of the
   NANOxCOMP project (paper reference [1]) applied to this repository's
   lattices.

   1. Run a stuck-ON / stuck-OFF fault campaign on a lattice and derive a
      minimal test set.
   2. Pretend one switch really is defective and remap the function around
      it with the pinned exhaustive search.

   Run with: dune exec examples/defect_tolerance.exe *)

module Faults = Lattice_synthesis.Faults
module Grid = Lattice_core.Grid

let () =
  let maj3 = Lattice_boolfn.Truthtable.majority_n 3 in
  let grid = Lattice_synthesis.Library.maj3_2x3 in
  let names = Lattice_boolfn.Sop.alpha_names in
  Printf.printf "majority-3 on the minimal 2x3 lattice:\n%s\n\n" (Grid.to_string ~names grid);

  (* 1. fault campaign *)
  let a = Faults.analyze grid in
  Printf.printf "fault campaign: %d faults, %d detectable\n" a.Faults.total a.Faults.detectable;
  List.iter
    (fun f -> Printf.printf "  logically masked: %s\n" (Faults.fault_name f))
    a.Faults.undetectable;
  Printf.printf "test set (%d vectors, 100%% detectable-fault coverage):\n"
    (List.length a.Faults.test_set);
  List.iter
    (fun m ->
      Printf.printf "  a=%d b=%d c=%d\n" (m land 1) ((m lsr 1) land 1) ((m lsr 2) land 1))
    a.Faults.test_set;
  print_newline ();

  (* 2. a manufacturing defect strikes switch (0,0): stuck OFF *)
  print_endline "defect: switch (0,0) stuck OFF.";
  print_endline "remapping on the same 2x3 fabric:";
  (match
     Lattice_synthesis.Exhaustive.find_with_pins ~rows:2 ~cols:3
       ~pins:[ (0, Grid.Const false) ] maj3
   with
  | Some g -> Printf.printf "%s\n" (Grid.to_string ~names g)
  | None -> print_endline "  impossible: the minimal lattice has no slack.");
  print_endline "remapping on a 2x4 fabric (one spare column):";
  (match
     Lattice_synthesis.Exhaustive.find_with_pins ~rows:2 ~cols:4
       ~pins:[ (0, Grid.Const false) ] maj3
   with
  | Some g ->
    Printf.printf "%s\n" (Grid.to_string ~names g);
    assert (Lattice_synthesis.Validate.realizes g maj3);
    print_endline "remap validated against majority-3."
  | None -> print_endline "  no remap found (unexpected)");

  (* and the circuit still works: DC-verify the remapped lattice *)
  match
    Lattice_synthesis.Exhaustive.find_with_pins ~rows:2 ~cols:4 ~pins:[ (0, Grid.Const false) ]
      maj3
  with
  | None -> ()
  | Some g ->
    let ok = ref true in
    for m = 0 to 7 do
      let stimulus v =
        Lattice_spice.Source.Dc (if (m lsr v) land 1 = 1 then 1.2 else 0.0)
      in
      let lc = Lattice_spice.Lattice_circuit.build g ~stimulus in
      let x = Lattice_spice.Dcop.solve lc.Lattice_spice.Lattice_circuit.netlist in
      let v =
        Lattice_spice.Mna.voltage x
          (Lattice_spice.Netlist.node lc.Lattice_spice.Lattice_circuit.netlist "out")
      in
      let expected_low = Lattice_boolfn.Truthtable.eval maj3 m in
      if not (Bool.equal (v < 0.6) expected_low) then ok := false
    done;
    Printf.printf "\ntransistor-level DC check of the remapped lattice: %s\n"
      (if !ok then "PASS" else "FAIL");
    if not !ok then exit 1
