(* Quickstart: build a switching lattice, inspect its function, evaluate it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A lattice is a grid of four-terminal switches; each cell holds a
     control literal (or 0/1). This is the paper's Fig 3b XOR3 lattice. *)
  let grid, names =
    Lattice_core.Grid.of_strings
      [ [ "a"; "b"; "a'" ]; [ "c'"; "1"; "c" ]; [ "a'"; "b'"; "a" ] ]
  in
  let name i = names.(i) in
  Printf.printf "The lattice:\n%s\n\n" (Lattice_core.Grid.to_string ~names:name grid);

  (* Its Boolean function: 1 iff the ON switches connect top and bottom. *)
  let f = Lattice_core.Lattice_function.of_assigned grid in
  Printf.printf "Lattice function: %s\n\n" (Lattice_boolfn.Sop.to_string ~names:name f);

  (* Evaluate it directly via plate-to-plate connectivity. *)
  print_endline "a b c | f";
  for m = 0 to 7 do
    let bit v = (m lsr v) land 1 in
    Printf.printf "%d %d %d | %d\n" (bit 0) (bit 1) (bit 2)
      (if Lattice_core.Connectivity.eval grid m then 1 else 0)
  done;
  print_newline ();

  (* The generic m x n lattice function grows fast (paper Table I). *)
  print_endline "Products of the generic m x n lattice function (Table I excerpt):";
  List.iter
    (fun (m, n) ->
      Printf.printf "  %dx%d: %d\n" m n (Lattice_core.Table1.count ~rows:m ~cols:n))
    [ (2, 2); (3, 3); (4, 4); (5, 5); (6, 6) ]
