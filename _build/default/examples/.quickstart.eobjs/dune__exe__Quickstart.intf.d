examples/quickstart.mli:
