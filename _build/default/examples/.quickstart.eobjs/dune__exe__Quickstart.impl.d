examples/quickstart.ml: Array Lattice_boolfn Lattice_core List Printf
