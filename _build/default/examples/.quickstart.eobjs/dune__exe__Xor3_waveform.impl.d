examples/xor3_waveform.ml: Bool Lattice_experiments Lattice_spice List Printf
