examples/device_explorer.ml: Array Device_model Field2d Float Geometry Lattice_device List Material Op_case Presets Printf Sweep
