examples/defect_tolerance.mli:
