examples/synthesis_flow.ml: Array Bool Lattice_boolfn Lattice_core Lattice_spice Lattice_synthesis List Printf String Sys
