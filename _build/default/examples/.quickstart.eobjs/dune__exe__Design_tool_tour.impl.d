examples/design_tool_tour.ml: Array Lattice_boolfn Lattice_flow List Printf Sys
