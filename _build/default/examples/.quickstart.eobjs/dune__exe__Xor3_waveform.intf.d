examples/xor3_waveform.mli:
