examples/design_tool_tour.mli:
