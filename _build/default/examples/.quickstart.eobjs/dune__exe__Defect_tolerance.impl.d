examples/defect_tolerance.ml: Bool Lattice_boolfn Lattice_core Lattice_spice Lattice_synthesis List Printf
