examples/device_explorer.mli:
