(* Tour of the automated design tool (paper Section VI-A): candidate
   generation, metric evaluation, ranking against a specification, and
   Monte-Carlo yield of the winner.

   Run with: dune exec examples/design_tool_tour.exe -- [EXPR]
   Default: 1-bit full-adder carry. *)

let () =
  let expr_src = if Array.length Sys.argv > 1 then Sys.argv.(1) else "a b + b c + a c" in
  Printf.printf "target: %s\n\n" expr_src;
  let ast, names = Lattice_boolfn.Expr.parse expr_src in
  let nvars = Array.length names in
  let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
  let pname i = if i < nvars then names.(i) else Printf.sprintf "v%d" i in

  print_endline "=== candidates, analytic metrics ===";
  let ranked = Lattice_flow.Optimizer.optimize ~expr:ast tt in
  List.iter (fun e -> print_endline (Lattice_flow.Optimizer.describe e ~names:pname)) ranked;

  print_endline "=== re-ranked with SPICE-measured metrics ===";
  let spec =
    { Lattice_flow.Optimizer.default_spec with Lattice_flow.Optimizer.weight_power = 0.25 }
  in
  let ranked = Lattice_flow.Optimizer.optimize ~spec ~use_spice:true ~expr:ast tt in
  List.iter (fun e -> print_endline (Lattice_flow.Optimizer.describe e ~names:pname)) ranked;

  match ranked with
  | [] -> print_endline "no candidates"
  | best :: _ ->
    let grid = best.Lattice_flow.Optimizer.implementation.Lattice_flow.Optimizer.grid in
    let inverted = best.Lattice_flow.Optimizer.implementation.Lattice_flow.Optimizer.inverted in
    let target = if inverted then Lattice_boolfn.Truthtable.complement tt else tt in
    print_endline "=== Monte-Carlo yield of the winner (local mismatch) ===";
    List.iter
      (fun sigma_vth ->
        let r =
          Lattice_flow.Monte_carlo.run grid ~target ~samples:60
            ~variation:{ Lattice_flow.Monte_carlo.sigma_vth; sigma_kp_rel = 0.1 }
        in
        Printf.printf "  sigma_Vth = %3.0f mV: yield %5.1f%%  V_OL %.3f +- %.3f V\n"
          (sigma_vth *. 1e3)
          (100.0 *. r.Lattice_flow.Monte_carlo.yield)
          r.Lattice_flow.Monte_carlo.v_low_mean r.Lattice_flow.Monte_carlo.v_low_std)
      [ 0.01; 0.03; 0.1; 0.2 ]
