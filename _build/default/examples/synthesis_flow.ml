(* End-to-end synthesis flow: Boolean expression -> minimized SOP -> lattice
   (dual-based construction) -> transistor-level netlist -> DC verification
   of every input combination against the specification.

   This is the flow a lattice-based design tool would run: Section II logic
   synthesis feeding the Section V circuit model.

   Run with: dune exec examples/synthesis_flow.exe -- [EXPR]
   Default EXPR is a 1-bit full-adder carry: "a b + b c + a c". *)

let () =
  let expr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "a b + b c + a c" in
  Printf.printf "specification: %s\n\n" expr;
  let ast, names = Lattice_boolfn.Expr.parse expr in
  let nvars = Array.length names in
  let tt = Lattice_boolfn.Expr.to_truthtable ast ~nvars in
  let name i = if i < nvars then names.(i) else Printf.sprintf "v%d" i in

  (* two-level minimization of f and its dual *)
  let f_sop = Lattice_boolfn.Qm.cover tt in
  let d_sop = Lattice_boolfn.Qm.cover (Lattice_boolfn.Truthtable.dual tt) in
  Printf.printf "minimized SOP:  f  = %s\n" (Lattice_boolfn.Sop.to_string ~names:name f_sop);
  Printf.printf "dual SOP:       fD = %s\n\n" (Lattice_boolfn.Sop.to_string ~names:name d_sop);

  (* dual-based lattice construction *)
  let r = Lattice_synthesis.Altun_riedel.synthesize tt in
  let grid = r.Lattice_synthesis.Altun_riedel.grid in
  Printf.printf "lattice (%dx%d):\n%s\n" grid.Lattice_core.Grid.rows grid.Lattice_core.Grid.cols
    (Lattice_core.Grid.to_string ~names:name grid);
  assert (Lattice_synthesis.Validate.realizes grid tt);
  Printf.printf "logic-level validation: PASS\n\n";

  (* transistor netlist: pull-down lattice computes NOT f, so a conducting
     lattice means f = 1 and the output node is low *)
  let vdd = 1.2 in
  let combos = 1 lsl nvars in
  Printf.printf "circuit-level verification (DC per input combination):\n";
  Printf.printf "  %s | f  V(out)   logic\n"
    (String.concat " " (List.init nvars (fun v -> name v)));
  let all_ok = ref true in
  for m = 0 to combos - 1 do
    let stimulus v = Lattice_spice.Source.Dc (if (m lsr v) land 1 = 1 then vdd else 0.0) in
    let lc = Lattice_spice.Lattice_circuit.build grid ~stimulus in
    let x = Lattice_spice.Dcop.solve lc.Lattice_spice.Lattice_circuit.netlist in
    let out_node =
      Lattice_spice.Netlist.node lc.Lattice_spice.Lattice_circuit.netlist
        lc.Lattice_spice.Lattice_circuit.output_node
    in
    let v_out = Lattice_spice.Mna.voltage x out_node in
    let spec = Lattice_boolfn.Truthtable.eval tt m in
    (* inverted output: f = 1 -> out low *)
    let circuit_f = v_out < vdd /. 2.0 in
    let ok = Bool.equal spec circuit_f in
    if not ok then all_ok := false;
    Printf.printf "  %s | %d  %6.3f   %s\n"
      (String.concat " " (List.init nvars (fun v -> string_of_int ((m lsr v) land 1))))
      (if spec then 1 else 0) v_out
      (if ok then "ok" else "MISMATCH")
  done;
  Printf.printf "\ncircuit-level verification: %s\n" (if !all_ok then "PASS" else "FAIL");
  if not !all_ok then exit 1
