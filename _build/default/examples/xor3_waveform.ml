(* Fig 11 end to end: simulate the inverse-XOR3 lattice through all eight
   input combinations and display the waveform with its measurements.

   Run with: dune exec examples/xor3_waveform.exe *)

let () =
  let r = Lattice_experiments.Exp_transient.run () in
  print_endline "inverse XOR3 on the 3x3 lattice (VDD 1.2 V, 500k pull-up, 10 fF load):";
  print_string
    (Lattice_spice.Measure.ascii_plot ~width:72 ~height:16 ~label:"V(out)" r.times r.out);
  print_newline ();
  Printf.printf "zero-state output: %.3f V (paper: ~0.22 V)\n" r.v_low;
  (match r.rise_time with
  | Some t -> Printf.printf "rise time:         %.1f ns (paper: ~11.3 ns)\n" (t *. 1e9)
  | None -> print_endline "rise time:         not observed");
  (match r.fall_time with
  | Some t -> Printf.printf "fall time:         %.1f ns (paper: ~4.7 ns)\n" (t *. 1e9)
  | None -> print_endline "fall time:         not observed");
  print_newline ();
  print_endline "input combination -> sampled output (expect NOT XOR3):";
  List.iter
    (fun (k, v, expect_one) ->
      Printf.printf "  a=%d b=%d c=%d  ->  %.3f V  (expected logic %d)  %s\n" (k land 1)
        ((k lsr 1) land 1) ((k lsr 2) land 1) v
        (if expect_one then 1 else 0)
        (if Bool.equal (v > 0.6) expect_one then "ok" else "MISMATCH"))
    r.slot_values;
  Printf.printf "\nfunctional: %s\n" (if r.functional_pass then "PASS" else "FAIL");
  if not r.functional_pass then exit 1
