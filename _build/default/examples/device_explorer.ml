(* Device explorer: evaluate the six Table II device variants (square,
   cross, junctionless x SiO2, HfO2), print their figures of merit, sample
   I-V curves and the current-density field summary.

   Run with: dune exec examples/device_explorer.exe *)

let () =
  let open Lattice_device in
  print_endline "figure-of-merit summary (DSSS case, paper Section III-B):";
  Printf.printf "  %-20s %10s %10s %12s %12s %10s\n" "variant" "Vth (V)" "n" "Ion (A)" "Ioff (A)"
    "on/off";
  List.iter
    (fun v ->
      let m = v.Presets.model in
      Printf.printf "  %-20s %10.3f %10.3f %12.3g %12.3g %10.2g\n" (Presets.variant_name v)
        m.Device_model.vth m.Device_model.ideality (Device_model.ion m) (Device_model.ioff m)
        (Device_model.on_off_ratio m))
    Presets.all;
  print_newline ();

  (* constant-current threshold extraction from the low-VDS sweep, the way
     a measurement engineer would do it *)
  print_endline "Vth re-extracted from the VDS = 10 mV sweep (constant-current method):";
  List.iter
    (fun v ->
      let iv = Sweep.standard v.Presets.model in
      let t1 = Sweep.drain_curve iv `Vgs_low in
      let icrit = 0.1 *. Array.fold_left Float.max 0.0 t1.Sweep.ys in
      match Sweep.threshold_from_sweep t1 ~icrit with
      | Some vth -> Printf.printf "  %-20s %.3f V (model: %.3f V)\n" (Presets.variant_name v) vth
                      v.Presets.model.Device_model.vth
      | None -> Printf.printf "  %-20s (no crossing)\n" (Presets.variant_name v))
    (List.filter (fun v -> not (Geometry.is_depletion v.Presets.geometry)) Presets.all);
  print_newline ();

  (* 2-D current-density field: the cross gate equalizes the source split *)
  print_endline "current-density field (DSSS, HfO2, drain = T1 north):";
  List.iter
    (fun shape ->
      let v = Presets.find ~shape ~dielectric:Material.HfO2 in
      let r = Field2d.solve v ~case:Op_case.dsss ~vgs:5.0 ~vds:5.0 in
      Printf.printf "  %-13s source-split CV %.3f, |J| CV %.3f\n" (Geometry.shape_name shape)
        r.Field2d.source_share_cv r.Field2d.channel_cv)
    [ Geometry.Square; Geometry.Cross; Geometry.Junctionless ];
  print_newline ();
  let v = Presets.find ~shape:Geometry.Square ~dielectric:Material.HfO2 in
  let r = Field2d.solve v ~case:Op_case.dsss ~vgs:5.0 ~vds:5.0 in
  print_endline "square-device |J| heat map:";
  print_string (Field2d.ascii r ~width:24)
