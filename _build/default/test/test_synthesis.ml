(* Tests for lattice synthesis: validation, the dual-based construction,
   exhaustive search and the library lattices. *)

module S = Lattice_synthesis
module Tt = Lattice_boolfn.Truthtable
module Grid = Lattice_core.Grid

(* --- Validate ------------------------------------------------------------ *)

let test_validate_positive () =
  Alcotest.(check bool) "xor3 3x3" true (S.Validate.realizes S.Library.xor3_3x3 S.Library.xor3)

let test_validate_negative () =
  let not_xor, _ = Grid.of_strings [ [ "a" ]; [ "b" ]; [ "c" ] ] in
  Alcotest.(check bool) "abc is not xor3" false (S.Validate.realizes not_xor S.Library.xor3);
  match S.Validate.counterexample not_xor S.Library.xor3 with
  | Some m -> Alcotest.(check bool) "counterexample disagrees" true
                (not (Bool.equal (Lattice_core.Connectivity.eval not_xor m) (Tt.eval S.Library.xor3 m)))
  | None -> Alcotest.fail "expected a counterexample"

(* --- Altun-Riedel ---------------------------------------------------------- *)

let test_ar_all_3var_functions () =
  (* exhaustively synthesize and validate every 3-variable function *)
  for bits = 0 to 255 do
    let t = Tt.create 3 (fun m -> bits land (1 lsl m) <> 0) in
    let r = S.Altun_riedel.synthesize t in
    if not (S.Validate.realizes r.S.Altun_riedel.grid t) then
      Alcotest.failf "function %d not realized" bits
  done

let test_ar_4var_sample () =
  let rng = Random.State.make [| 2024 |] in
  for _ = 1 to 50 do
    let bits = Random.State.bits rng land 0xFFFF in
    let t = Tt.create 4 (fun m -> bits land (1 lsl m) <> 0) in
    let r = S.Altun_riedel.synthesize t in
    if not (S.Validate.realizes r.S.Altun_riedel.grid t) then
      Alcotest.failf "4-var function %d not realized" bits
  done

let test_ar_dimensions () =
  (* lattice size = (dual products) x (function products) *)
  let r = S.Altun_riedel.synthesize S.Library.xor3 in
  Alcotest.(check int) "rows" 4 r.S.Altun_riedel.grid.Grid.rows;
  Alcotest.(check int) "cols" 4 r.S.Altun_riedel.grid.Grid.cols;
  Alcotest.(check int) "f products" 4 (Lattice_boolfn.Sop.product_count r.S.Altun_riedel.f_sop);
  Alcotest.(check int) "fD products" 4
    (Lattice_boolfn.Sop.product_count r.S.Altun_riedel.dual_sop)

let test_ar_constants () =
  let zero = Tt.create 2 (fun _ -> false) in
  let one = Tt.create 2 (fun _ -> true) in
  let rz = S.Altun_riedel.synthesize zero and ro = S.Altun_riedel.synthesize one in
  Alcotest.(check bool) "constant 0" true (S.Validate.realizes rz.S.Altun_riedel.grid zero);
  Alcotest.(check bool) "constant 1" true (S.Validate.realizes ro.S.Altun_riedel.grid one)

let test_ar_single_literal () =
  let t = Tt.create 2 (fun m -> m land 1 <> 0) in
  let r = S.Altun_riedel.synthesize t in
  Alcotest.(check bool) "f = a" true (S.Validate.realizes r.S.Altun_riedel.grid t);
  Alcotest.(check int) "1x1 lattice" 1 (Grid.size r.S.Altun_riedel.grid)

let test_ar_rejects_non_dual () =
  (* feeding f twice (f is not self-dual here) must fail the shared-literal
     property somewhere *)
  let t = Tt.create 2 (fun m -> m = 3) in
  (* f = ab *)
  let f_sop = Lattice_boolfn.Qm.cover t in
  Alcotest.(check bool) "and2 with itself is fine (shares literals)" true
    (match S.Altun_riedel.of_sops ~f_sop ~dual_sop:f_sop with
    | _ -> true
    | exception S.Altun_riedel.No_shared_literal _ -> false);
  (* f = a, g = b share nothing *)
  let fa = Lattice_boolfn.Qm.cover (Tt.create 2 (fun m -> m land 1 <> 0)) in
  let fb = Lattice_boolfn.Qm.cover (Tt.create 2 (fun m -> m land 2 <> 0)) in
  Alcotest.(check bool) "disjoint literals rejected" true
    (match S.Altun_riedel.of_sops ~f_sop:fa ~dual_sop:fb with
    | exception S.Altun_riedel.No_shared_literal _ -> true
    | _ -> false)

let test_ar_self_dual_square () =
  (* self-dual functions synthesize to square lattices *)
  let maj = Tt.majority_n 3 in
  let r = S.Altun_riedel.synthesize maj in
  Alcotest.(check int) "maj3 rows" r.S.Altun_riedel.grid.Grid.cols r.S.Altun_riedel.grid.Grid.rows;
  Alcotest.(check bool) "maj3 valid" true (S.Validate.realizes r.S.Altun_riedel.grid maj)

(* --- Exhaustive ------------------------------------------------------------ *)

let test_exhaustive_xor2 () =
  let xor2 = Tt.xor_n 2 in
  match S.Exhaustive.minimal xor2 with
  | Some (g, rows, cols) ->
    Alcotest.(check int) "area 4" 4 (rows * cols);
    Alcotest.(check bool) "valid" true (S.Validate.realizes g xor2)
  | None -> Alcotest.fail "xor2 should be realizable"

let test_exhaustive_and_or () =
  let and2 = Tt.create 2 (fun m -> m = 3) in
  (match S.Exhaustive.minimal and2 with
  | Some (g, rows, cols) ->
    Alcotest.(check int) "and2 area 2" 2 (rows * cols);
    Alcotest.(check int) "and2 is a column" 2 rows;
    Alcotest.(check bool) "valid" true (S.Validate.realizes g and2)
  | None -> Alcotest.fail "and2 should be realizable");
  let or2 = Tt.create 2 (fun m -> m <> 0) in
  match S.Exhaustive.minimal or2 with
  | Some (g, rows, cols) ->
    Alcotest.(check int) "or2 area 2" 2 (rows * cols);
    Alcotest.(check int) "or2 is a row" 1 rows;
    Alcotest.(check bool) "valid" true (S.Validate.realizes g or2)
  | None -> Alcotest.fail "or2 should be realizable"

let test_exhaustive_maj3 () =
  match S.Exhaustive.minimal (Tt.majority_n 3) with
  | Some (g, rows, cols) ->
    Alcotest.(check int) "maj3 minimal area 6" 6 (rows * cols);
    Alcotest.(check bool) "valid" true (S.Validate.realizes g (Tt.majority_n 3))
  | None -> Alcotest.fail "maj3 should be realizable"

let test_exhaustive_xor3_needs_constants () =
  (* XOR3 has no literal-only 3x3 realization but has one with constants *)
  Alcotest.(check bool) "no literal-only 3x3" true
    (S.Exhaustive.find ~rows:3 ~cols:3 S.Library.xor3 = None);
  match
    S.Exhaustive.find ~rows:3 ~cols:3 ~alphabet:S.Exhaustive.Literals_and_constants S.Library.xor3
  with
  | Some g -> Alcotest.(check bool) "found with constants" true (S.Validate.realizes g S.Library.xor3)
  | None -> Alcotest.fail "expected a 3x3 XOR3 with constants"

let test_defect_aware_mapping () =
  let maj3 = Tt.majority_n 3 in
  (* the minimal 2x3 has no slack: a dead corner kills it *)
  Alcotest.(check bool) "2x3 with dead corner: unmappable" true
    (S.Exhaustive.find_with_pins ~rows:2 ~cols:3
       ~pins:[ (0, Lattice_core.Grid.Const false) ]
       maj3
    = None);
  (* one spare column restores mappability around the defect *)
  match
    S.Exhaustive.find_with_pins ~rows:2 ~cols:4 ~pins:[ (0, Lattice_core.Grid.Const false) ] maj3
  with
  | Some g ->
    Alcotest.(check bool) "remap realizes maj3" true (S.Validate.realizes g maj3);
    (match Lattice_core.Grid.entry g 0 0 with
    | Lattice_core.Grid.Const false -> ()
    | _ -> Alcotest.fail "pin not respected")
  | None -> Alcotest.fail "expected a 2x4 remap"

let test_defect_pin_stuck_on () =
  (* stuck-ON pins are usable too *)
  let or2 = Tt.create 2 (fun m -> m <> 0) in
  match
    S.Exhaustive.find_with_pins ~rows:1 ~cols:3 ~pins:[ (1, Lattice_core.Grid.Const true) ] or2
  with
  | Some g -> Alcotest.(check bool) "hmm: stuck-on middle of an OR row" true
                (S.Validate.realizes g or2)
  | None ->
    (* a stuck-ON site in a 1-row lattice conducts always, so OR cannot be
       realized there; acceptable outcome *)
    ()

let test_pin_out_of_range () =
  Alcotest.(check bool) "bad pin rejected" true
    (match
       S.Exhaustive.find_with_pins ~rows:2 ~cols:2 ~pins:[ (9, Lattice_core.Grid.Const true) ]
         (Tt.xor_n 2)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_exhaustive_count () =
  let and2 = Tt.create 2 (fun m -> m = 3) in
  let n = S.Exhaustive.count_solutions ~rows:2 ~cols:1 and2 in
  (* column entries (a,b) and (b,a) *)
  Alcotest.(check int) "two orderings" 2 n;
  let capped = S.Exhaustive.count_solutions ~rows:2 ~cols:1 ~limit:1 and2 in
  Alcotest.(check int) "limit respected" 1 capped

(* --- Faults ------------------------------------------------------------------ *)

let test_faults_enumeration () =
  let grid = S.Library.xor3_3x3 in
  let faults = S.Faults.all_faults grid in
  Alcotest.(check int) "two faults per site" 18 (List.length faults)

let test_faults_injection () =
  let grid = S.Library.xor3_3x3 in
  let f = { S.Faults.row = 0; col = 0; kind = S.Faults.Stuck_off } in
  let faulty = S.Faults.inject grid f in
  (match Lattice_core.Grid.entry faulty 0 0 with
  | Lattice_core.Grid.Const false -> ()
  | _ -> Alcotest.fail "expected constant 0");
  (* injection does not mutate the original *)
  match Lattice_core.Grid.entry grid 0 0 with
  | Lattice_core.Grid.Lit (0, true) -> ()
  | _ -> Alcotest.fail "original grid mutated"

let test_faults_center_const_masked () =
  (* the 3x3 XOR3 centre is a constant 1: stuck-ON there is no change *)
  let grid = S.Library.xor3_3x3 in
  let f = { S.Faults.row = 1; col = 1; kind = S.Faults.Stuck_on } in
  Alcotest.(check bool) "masked" false (S.Faults.is_detectable grid f);
  let f_off = { f with S.Faults.kind = S.Faults.Stuck_off } in
  Alcotest.(check bool) "stuck-off detectable" true (S.Faults.is_detectable grid f_off)

let test_faults_analysis_xor3 () =
  let a = S.Faults.analyze S.Library.xor3_3x3 in
  Alcotest.(check int) "total" 18 a.S.Faults.total;
  Alcotest.(check int) "one masked fault" 17 a.S.Faults.detectable;
  (* the greedy test set must reach full coverage of detectable faults *)
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (S.Faults.coverage S.Library.xor3_3x3 ~vectors:a.S.Faults.test_set)

let test_faults_partial_coverage () =
  let grid = S.Library.xor3_3x3 in
  let c = S.Faults.coverage grid ~vectors:[ 0 ] in
  Alcotest.(check bool) "single vector covers some but not all" true (c > 0.0 && c < 1.0)

let test_faults_detecting_vectors_semantics () =
  (* on each detecting vector the faulty and fault-free outputs differ *)
  let grid = S.Library.maj3_2x3 in
  List.iter
    (fun f ->
      List.iter
        (fun v ->
          let faulty = S.Faults.inject grid f in
          Alcotest.(check bool) "disagreement" false
            (Bool.equal
               (Lattice_core.Connectivity.eval grid v)
               (Lattice_core.Connectivity.eval faulty v)))
        (S.Faults.detecting_vectors grid f))
    (S.Faults.all_faults grid)

(* --- Library --------------------------------------------------------------- *)

let test_library_grids () =
  Alcotest.(check bool) "xor3 3x3" true (S.Validate.realizes S.Library.xor3_3x3 S.Library.xor3);
  Alcotest.(check bool) "xnor3 3x3" true
    (S.Validate.realizes S.Library.xnor3_3x3 (Tt.complement S.Library.xor3));
  Alcotest.(check bool) "xor3 3x4" true (S.Validate.realizes S.Library.xor3_3x4 S.Library.xor3);
  Alcotest.(check bool) "maj3 2x3" true
    (S.Validate.realizes S.Library.maj3_2x3 (Tt.majority_n 3));
  Alcotest.(check bool) "xor3 SOP" true
    (Tt.equal (Tt.of_sop S.Library.xor3_sop) S.Library.xor3)

let test_library_sizes () =
  Alcotest.(check int) "3x3 size" 9 (Grid.size S.Library.xor3_3x3);
  Alcotest.(check int) "3x4 size" 12 (Grid.size S.Library.xor3_3x4);
  Alcotest.(check int) "xor3 sop products" 4
    (Lattice_boolfn.Sop.product_count S.Library.xor3_sop)

let prop_ar_random_functions =
  QCheck2.Test.make ~name:"Altun-Riedel valid on random 4-var functions" ~count:60
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun bits ->
      let t = Tt.create 4 (fun m -> bits land (1 lsl m) <> 0) in
      let r = S.Altun_riedel.synthesize t in
      S.Validate.realizes r.S.Altun_riedel.grid t)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "synthesis"
    [
      ( "validate",
        [
          Alcotest.test_case "positive" `Quick test_validate_positive;
          Alcotest.test_case "negative + counterexample" `Quick test_validate_negative;
        ] );
      ( "altun_riedel",
        [
          Alcotest.test_case "all 256 3-var functions" `Quick test_ar_all_3var_functions;
          Alcotest.test_case "random 4-var functions" `Quick test_ar_4var_sample;
          Alcotest.test_case "xor3 dimensions" `Quick test_ar_dimensions;
          Alcotest.test_case "constants" `Quick test_ar_constants;
          Alcotest.test_case "single literal" `Quick test_ar_single_literal;
          Alcotest.test_case "non-dual covers rejected" `Quick test_ar_rejects_non_dual;
          Alcotest.test_case "self-dual gives square" `Quick test_ar_self_dual_square;
          qc prop_ar_random_functions;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "xor2 minimal" `Quick test_exhaustive_xor2;
          Alcotest.test_case "and2 / or2 minimal" `Quick test_exhaustive_and_or;
          Alcotest.test_case "maj3 minimal" `Quick test_exhaustive_maj3;
          Alcotest.test_case "xor3 needs constants at 3x3" `Slow
            test_exhaustive_xor3_needs_constants;
          Alcotest.test_case "solution counting" `Quick test_exhaustive_count;
          Alcotest.test_case "defect-aware mapping" `Quick test_defect_aware_mapping;
          Alcotest.test_case "stuck-on pins" `Quick test_defect_pin_stuck_on;
          Alcotest.test_case "pin validation" `Quick test_pin_out_of_range;
        ] );
      ( "faults",
        [
          Alcotest.test_case "enumeration" `Quick test_faults_enumeration;
          Alcotest.test_case "injection" `Quick test_faults_injection;
          Alcotest.test_case "masked constant site" `Quick test_faults_center_const_masked;
          Alcotest.test_case "XOR3 campaign" `Quick test_faults_analysis_xor3;
          Alcotest.test_case "partial coverage" `Quick test_faults_partial_coverage;
          Alcotest.test_case "vector semantics" `Quick test_faults_detecting_vectors_semantics;
        ] );
      ( "library",
        [
          Alcotest.test_case "grids realize their targets" `Quick test_library_grids;
          Alcotest.test_case "sizes" `Quick test_library_sizes;
        ] );
    ]
