(* Tests for the Boolean-function substrate. *)

module Bitset = Lattice_boolfn.Bitset
module Cube = Lattice_boolfn.Cube
module Sop = Lattice_boolfn.Sop
module Tt = Lattice_boolfn.Truthtable
module Qm = Lattice_boolfn.Qm
module Expr = Lattice_boolfn.Expr

(* --- Bitset ------------------------------------------------------------- *)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem s 50);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Bitset.to_list s)

let test_bitset_subset () =
  let a = Bitset.of_list 80 [ 1; 70 ] in
  let b = Bitset.of_list 80 [ 1; 5; 70 ] in
  Alcotest.(check bool) "a <= b" true (Bitset.subset a b);
  Alcotest.(check bool) "b <= a" false (Bitset.subset b a);
  Alcotest.(check bool) "a <= a" true (Bitset.subset a a)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: element out of range") (fun () ->
      Bitset.add s 10)

let prop_bitset_roundtrip =
  QCheck2.Test.make ~name:"Bitset of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 99))
    (fun elems ->
      let s = Bitset.of_list 100 elems in
      Bitset.to_list s = List.sort_uniq Int.compare elems)

(* --- Cube --------------------------------------------------------------- *)

let test_cube_literals () =
  let c = Cube.of_literals [ (2, true); (0, false); (5, true) ] in
  Alcotest.(check (list (pair int bool)))
    "literals sorted" [ (0, false); (2, true); (5, true) ] (Cube.literals c);
  Alcotest.(check int) "size" 3 (Cube.size c);
  Alcotest.(check string) "render" "a' c f" (Cube.to_string ~names:Sop.alpha_names c)

let test_cube_contradiction () =
  Alcotest.(check bool) "x and x' contradict" true
    (match Cube.of_literals [ (1, true); (1, false) ] with
    | exception Cube.Contradictory -> true
    | _ -> false);
  (* idempotent repetition is fine *)
  let c = Cube.of_literals [ (1, true); (1, true) ] in
  Alcotest.(check int) "idempotent" 1 (Cube.size c)

let test_cube_eval () =
  let c = Cube.of_literals [ (0, true); (1, false) ] in
  Alcotest.(check bool) "a=1 b=0" true (Cube.eval c 0b01);
  Alcotest.(check bool) "a=1 b=1" false (Cube.eval c 0b11);
  Alcotest.(check bool) "a=0 b=0" false (Cube.eval c 0b00);
  Alcotest.(check bool) "empty cube true" true (Cube.eval Cube.one 0b1010)

let cube_gen nvars =
  let open QCheck2.Gen in
  list_size (int_range 0 nvars) (pair (int_range 0 (nvars - 1)) bool) >|= fun lits ->
  try Some (Cube.of_literals lits) with Cube.Contradictory -> None

let prop_cube_implies_semantic =
  (* implies a b must coincide with pointwise implication over assignments *)
  QCheck2.Test.make ~name:"Cube.implies = semantic implication" ~count:300
    QCheck2.Gen.(pair (cube_gen 4) (cube_gen 4))
    (fun (a, b) ->
      match (a, b) with
      | Some a, Some b ->
        let semantic = ref true in
        for m = 0 to 15 do
          if Cube.eval a m && not (Cube.eval b m) then semantic := false
        done;
        Bool.equal (Cube.implies a b) !semantic
      | None, _ | _, None -> QCheck2.assume_fail ())

(* --- Sop ---------------------------------------------------------------- *)

let test_sop_absorb () =
  let ab = Cube.of_literals [ (0, true); (1, true) ] in
  let a = Cube.of_literals [ (0, true) ] in
  let abc = Cube.of_literals [ (0, true); (1, true); (2, true) ] in
  let f = Sop.of_cubes 3 [ ab; a; abc ] in
  let g = Sop.absorb f in
  Alcotest.(check int) "only a survives" 1 (Sop.product_count g);
  Alcotest.(check string) "a" "a" (Sop.to_string ~names:Sop.alpha_names g)

let test_sop_constants () =
  Alcotest.(check string) "zero" "0" (Sop.to_string ~names:Sop.alpha_names (Sop.zero 2));
  Alcotest.(check string) "one" "1" (Sop.to_string ~names:Sop.alpha_names (Sop.one 2));
  Alcotest.(check bool) "one evals true" true (Sop.eval (Sop.one 2) 0)

let test_sop_counts () =
  let f = Sop.of_cubes 3 [ Cube.of_literals [ (0, true); (1, false) ]; Cube.of_literals [ (2, true) ] ] in
  Alcotest.(check int) "products" 2 (Sop.product_count f);
  Alcotest.(check int) "literals" 3 (Sop.literal_count f)

let random_sop_gen =
  let open QCheck2.Gen in
  list_size (int_range 0 6) (cube_gen 4) >|= fun cubes ->
  Sop.of_cubes 4 (List.filter_map Fun.id cubes)

let prop_absorb_preserves_semantics =
  QCheck2.Test.make ~name:"Sop.absorb preserves the function" ~count:300 random_sop_gen (fun f ->
      Sop.equal_semantically f (Sop.absorb f))

let prop_disjunction_semantics =
  QCheck2.Test.make ~name:"Sop.disjunction = pointwise or" ~count:200
    QCheck2.Gen.(pair random_sop_gen random_sop_gen)
    (fun (a, b) ->
      let d = Sop.disjunction a b in
      let ok = ref true in
      for m = 0 to 15 do
        if not (Bool.equal (Sop.eval d m) (Sop.eval a m || Sop.eval b m)) then ok := false
      done;
      !ok)

(* --- Truthtable --------------------------------------------------------- *)

let test_tt_xor_majority () =
  let x3 = Tt.xor_n 3 in
  Alcotest.(check int) "xor3 ones" 4 (Tt.count_ones x3);
  Alcotest.(check bool) "xor3(1,1,1)" true (Tt.eval x3 0b111);
  Alcotest.(check bool) "xor3(1,1,0)" false (Tt.eval x3 0b011);
  let m3 = Tt.majority_n 3 in
  Alcotest.(check int) "maj3 ones" 4 (Tt.count_ones m3);
  Alcotest.(check bool) "maj3(1,1,0)" true (Tt.eval m3 0b011);
  Alcotest.check_raises "majority even" (Invalid_argument "Truthtable.majority_n: even input count")
    (fun () -> ignore (Tt.majority_n 4))

let test_tt_self_dual () =
  Alcotest.(check bool) "xor3 self-dual" true (Tt.is_self_dual (Tt.xor_n 3));
  Alcotest.(check bool) "maj3 self-dual" true (Tt.is_self_dual (Tt.majority_n 3));
  Alcotest.(check bool) "and2 not self-dual" false
    (Tt.is_self_dual (Tt.create 2 (fun m -> m = 3)))

let test_tt_minterms () =
  let t = Tt.of_minterms 3 [ 1; 5; 2 ] in
  Alcotest.(check (list int)) "minterms sorted" [ 1; 2; 5 ] (Tt.minterms t)

let tt_gen nvars =
  QCheck2.Gen.(int_bound ((1 lsl (1 lsl nvars)) - 1) >|= fun bits ->
               Tt.create nvars (fun m -> bits land (1 lsl m) <> 0))

let prop_dual_involution =
  QCheck2.Test.make ~name:"dual (dual f) = f" ~count:300 (tt_gen 4) (fun t ->
      Tt.equal (Tt.dual (Tt.dual t)) t)

let prop_complement_involution =
  QCheck2.Test.make ~name:"complement involution" ~count:200 (tt_gen 4) (fun t ->
      Tt.equal (Tt.complement (Tt.complement t)) t)

(* --- Qm ----------------------------------------------------------------- *)

let test_qm_known () =
  (* f = a b + a b' = a *)
  let t = Tt.of_minterms 2 [ 1; 3 ] in
  let f = Qm.cover t in
  Alcotest.(check int) "single product" 1 (Sop.product_count f);
  Alcotest.(check string) "a" "a" (Sop.to_string ~names:Sop.alpha_names f)

let test_qm_xor () =
  (* XOR needs both minterms; nothing merges *)
  let t = Tt.of_minterms 2 [ 1; 2 ] in
  let f = Qm.cover t in
  Alcotest.(check int) "two products" 2 (Sop.product_count f);
  Alcotest.(check int) "four literals" 4 (Sop.literal_count f)

let test_qm_classic () =
  (* classic example: minterms 0,1,2,5,6,7 of 3 vars minimizes to 3 pairs *)
  let t = Tt.of_minterms 3 [ 0; 1; 2; 5; 6; 7 ] in
  let f = Qm.cover t in
  Alcotest.(check bool) "cover exact" true (Tt.equal (Tt.of_sop f) t);
  Alcotest.(check int) "three products" 3 (Sop.product_count f)

let prop_qm_cover_exact =
  QCheck2.Test.make ~name:"Qm.cover computes the same function" ~count:300 (tt_gen 4) (fun t ->
      Tt.equal (Tt.of_sop (Qm.cover t)) t)

let prop_qm_primes_are_implicants =
  QCheck2.Test.make ~name:"Qm prime implicants imply f" ~count:200 (tt_gen 3) (fun t ->
      List.for_all
        (fun imp ->
          let c = Qm.cube_of_implicant 3 imp in
          let ok = ref true in
          for m = 0 to 7 do
            if Cube.eval c m && not (Tt.eval t m) then ok := false
          done;
          !ok)
        (Qm.prime_implicants t))

(* --- Expr --------------------------------------------------------------- *)

let test_expr_parse_eval () =
  let ast, names = Expr.parse "a & b | !c" in
  Alcotest.(check int) "3 vars" 3 (Array.length names);
  Alcotest.(check bool) "(1,1,1)" true (Expr.eval ast 0b011);
  Alcotest.(check bool) "(0,0,1)" false (Expr.eval ast 0b100);
  Alcotest.(check bool) "(0,0,0)" true (Expr.eval ast 0b000)

let test_expr_juxtaposition () =
  let ast, names = Expr.parse "a b' + c" in
  Alcotest.(check int) "3 vars" 3 (Array.length names);
  Alcotest.(check bool) "a=1 b=0" true (Expr.eval ast 0b001);
  Alcotest.(check bool) "a=1 b=1 c=0" false (Expr.eval ast 0b011)

let test_expr_xor_precedence () =
  (* ^ binds tighter than | and looser than & *)
  let ast, _ = Expr.parse "a ^ b & c" in
  (* = a ^ (b & c) *)
  Alcotest.(check bool) "1^(0&1)=1" true (Expr.eval ast 0b101);
  Alcotest.(check bool) "1^(1&1)=0" false (Expr.eval ast 0b111)

let test_expr_double_prime () =
  let ast, _ = Expr.parse "a''" in
  Alcotest.(check bool) "a'' = a" true (Expr.eval ast 0b1)

let test_expr_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (match Expr.parse s with exception Expr.Parse_error _ -> true | _ -> false))
    [ "a +"; "(a"; "a b )"; "&"; "'a"; "a $ b" ]

let test_expr_sop_of_string () =
  let sop, names = Expr.sop_of_string "a b + a b' " in
  Alcotest.(check int) "minimized to a" 1 (Sop.product_count sop);
  Alcotest.(check string) "var name" "a" names.(0)

let test_expr_constants () =
  let ast, _ = Expr.parse "a & 0 | 1" in
  Alcotest.(check bool) "const" true (Expr.eval ast 0)

(* --- Bdd ---------------------------------------------------------------- *)

module Bdd = Lattice_boolfn.Bdd

let test_bdd_basics () =
  let m = Bdd.create_manager ~nvars:3 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  Alcotest.(check bool) "a and not a = 0" true
    (Bdd.is_zero m (Bdd.conj m a (Bdd.nvar m 0)));
  Alcotest.(check bool) "a or not a = 1" true (Bdd.is_one m (Bdd.disj m a (Bdd.nvar m 0)));
  Alcotest.(check bool) "a xor a = 0" true (Bdd.is_zero m (Bdd.xor m a a));
  Alcotest.(check bool) "idempotent sharing" true (Bdd.equal (Bdd.conj m a b) (Bdd.conj m b a))

let test_bdd_eval_sat () =
  let m = Bdd.create_manager ~nvars:3 in
  let f = Bdd.disj m (Bdd.conj m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 2) in
  (* f = ab + c: 5 of 8 assignments satisfy *)
  Alcotest.(check int) "sat count" 5 (Bdd.sat_count m f);
  Alcotest.(check bool) "eval(1,1,0)" true (Bdd.eval m f 0b011);
  Alcotest.(check bool) "eval(1,0,0)" false (Bdd.eval m f 0b001)

let test_bdd_restrict () =
  let m = Bdd.create_manager ~nvars:2 in
  let f = Bdd.xor m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "f|a=1 is not b" true
    (Bdd.equal (Bdd.restrict m f 0 true) (Bdd.nvar m 1));
  Alcotest.(check bool) "f|a=0 is b" true (Bdd.equal (Bdd.restrict m f 0 false) (Bdd.var m 1))

let test_bdd_matches_truthtable () =
  (* every 3-variable function roundtrips *)
  let m = Bdd.create_manager ~nvars:3 in
  for bits = 0 to 255 do
    let tt = Tt.create 3 (fun a -> bits land (1 lsl a) <> 0) in
    let b = Bdd.of_truthtable m tt in
    for a = 0 to 7 do
      if not (Bool.equal (Bdd.eval m b a) (Tt.eval tt a)) then
        Alcotest.failf "function %d differs at %d" bits a
    done;
    Alcotest.(check int) (Printf.sprintf "sat count of %d" bits) (Tt.count_ones tt)
      (Bdd.sat_count m b)
  done

let prop_bdd_of_sop_semantics =
  QCheck2.Test.make ~name:"Bdd.of_sop = Sop.eval" ~count:200 random_sop_gen (fun f ->
      let m = Bdd.create_manager ~nvars:4 in
      let b = Bdd.of_sop m f in
      let ok = ref true in
      for a = 0 to 15 do
        if not (Bool.equal (Bdd.eval m b a) (Sop.eval f a)) then ok := false
      done;
      !ok)

let prop_bdd_dual_involution =
  QCheck2.Test.make ~name:"Bdd dual involution and agreement with Truthtable.dual" ~count:200
    (tt_gen 4) (fun tt ->
      let m = Bdd.create_manager ~nvars:4 in
      let b = Bdd.of_truthtable m tt in
      Bdd.equal (Bdd.dual m (Bdd.dual m b)) b
      && Bdd.equal (Bdd.dual m b) (Bdd.of_truthtable m (Tt.dual tt)))

let prop_bdd_equivalence_is_physical =
  QCheck2.Test.make ~name:"Bdd canonical form: QM cover equals original" ~count:200 (tt_gen 4)
    (fun tt ->
      let m = Bdd.create_manager ~nvars:4 in
      Bdd.equal (Bdd.of_truthtable m tt) (Bdd.of_sop m (Qm.cover tt)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "boolfn"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "subset" `Quick test_bitset_subset;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          qc prop_bitset_roundtrip;
        ] );
      ( "cube",
        [
          Alcotest.test_case "literals" `Quick test_cube_literals;
          Alcotest.test_case "contradiction" `Quick test_cube_contradiction;
          Alcotest.test_case "eval" `Quick test_cube_eval;
          qc prop_cube_implies_semantic;
        ] );
      ( "sop",
        [
          Alcotest.test_case "absorb" `Quick test_sop_absorb;
          Alcotest.test_case "constants" `Quick test_sop_constants;
          Alcotest.test_case "counts" `Quick test_sop_counts;
          qc prop_absorb_preserves_semantics;
          qc prop_disjunction_semantics;
        ] );
      ( "truthtable",
        [
          Alcotest.test_case "xor and majority" `Quick test_tt_xor_majority;
          Alcotest.test_case "self-duality" `Quick test_tt_self_dual;
          Alcotest.test_case "minterms" `Quick test_tt_minterms;
          qc prop_dual_involution;
          qc prop_complement_involution;
        ] );
      ( "qm",
        [
          Alcotest.test_case "merges a b + a b'" `Quick test_qm_known;
          Alcotest.test_case "xor does not merge" `Quick test_qm_xor;
          Alcotest.test_case "classic 3-var example" `Quick test_qm_classic;
          qc prop_qm_cover_exact;
          qc prop_qm_primes_are_implicants;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "basics" `Quick test_bdd_basics;
          Alcotest.test_case "eval and sat count" `Quick test_bdd_eval_sat;
          Alcotest.test_case "restrict" `Quick test_bdd_restrict;
          Alcotest.test_case "all 3-var functions roundtrip" `Quick test_bdd_matches_truthtable;
          qc prop_bdd_of_sop_semantics;
          qc prop_bdd_dual_involution;
          qc prop_bdd_equivalence_is_physical;
        ] );
      ( "expr",
        [
          Alcotest.test_case "parse and eval" `Quick test_expr_parse_eval;
          Alcotest.test_case "juxtaposition AND" `Quick test_expr_juxtaposition;
          Alcotest.test_case "xor precedence" `Quick test_expr_xor_precedence;
          Alcotest.test_case "double prime" `Quick test_expr_double_prime;
          Alcotest.test_case "parse errors" `Quick test_expr_errors;
          Alcotest.test_case "sop_of_string" `Quick test_expr_sop_of_string;
          Alcotest.test_case "constants" `Quick test_expr_constants;
        ] );
    ]
