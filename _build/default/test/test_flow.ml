(* Tests for the automated design tool (optimizer). *)

module Opt = Lattice_flow.Optimizer
module Tt = Lattice_boolfn.Truthtable

let xor3 = Tt.xor_n 3
let maj3 = Tt.majority_n 3

let test_candidates_valid () =
  (* every candidate must realize the target (modulo output inversion) *)
  List.iter
    (fun target ->
      List.iter
        (fun impl ->
          let effective =
            if impl.Opt.inverted then Tt.complement target else target
          in
          Alcotest.(check bool)
            (impl.Opt.method_name ^ " realizes target")
            true
            (Lattice_synthesis.Validate.realizes impl.Opt.grid effective))
        (Opt.candidates target))
    [ xor3; maj3; Tt.create 2 (fun m -> m = 3) ]

let test_candidates_distinct () =
  let impls = Opt.candidates maj3 in
  Alcotest.(check bool) "at least two candidates" true (List.length impls >= 2)

let test_estimate_sanity () =
  List.iter
    (fun impl ->
      let m = Opt.estimate impl in
      Alcotest.(check bool) "positive delay" true (m.Opt.delay > 0.0);
      Alcotest.(check bool) "positive power" true (m.Opt.static_power > 0.0);
      Alcotest.(check int) "area = switches" (Lattice_core.Grid.size impl.Opt.grid) m.Opt.area;
      Alcotest.(check bool) "not spice" false m.Opt.from_spice)
    (Opt.candidates xor3)

let test_estimate_scales_with_rows () =
  (* taller lattices have slower falls and lower static power *)
  let grid_of rows =
    { Opt.grid = Lattice_core.Grid.generic rows 2; inverted = false; method_name = "test" }
  in
  let short = Opt.estimate (grid_of 2) and tall = Opt.estimate (grid_of 6) in
  Alcotest.(check bool) "taller = slower fall" true (tall.Opt.fall > short.Opt.fall)

let test_optimize_ranking () =
  let ranked = Opt.optimize maj3 in
  Alcotest.(check bool) "non-empty" true (ranked <> []);
  (* scores non-decreasing within the feasible prefix *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a.Opt.feasible && b.Opt.feasible then
        Alcotest.(check bool) "sorted by score" true (a.Opt.score <= b.Opt.score);
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted ranked;
  (* the exhaustive 2x3 majority lattice should beat the dual-based 3x3 on
     area when present *)
  match List.find_opt (fun e -> e.Opt.implementation.Opt.method_name = "exhaustive") ranked with
  | Some e -> Alcotest.(check int) "exhaustive maj3 area" 6 e.Opt.metrics.Opt.area
  | None -> Alcotest.fail "expected an exhaustive candidate for maj3"

let test_optimize_spec_bounds () =
  let spec = { Opt.default_spec with Opt.max_area = Some 6 } in
  let ranked = Opt.optimize ~spec maj3 in
  (* feasible candidates come first and respect the bound *)
  (match ranked with
  | first :: _ ->
    Alcotest.(check bool) "first is feasible" true first.Opt.feasible;
    Alcotest.(check bool) "bound respected" true (first.Opt.metrics.Opt.area <= 6)
  | [] -> Alcotest.fail "no candidates");
  let impossible = { Opt.default_spec with Opt.max_area = Some 1 } in
  let ranked = Opt.optimize ~spec:impossible maj3 in
  Alcotest.(check bool) "all infeasible under area 1" true
    (List.for_all (fun e -> not e.Opt.feasible) ranked)

let test_optimize_spice_agrees_in_order () =
  (* spice-based and analytic evaluation should agree on the qualitative
     facts: positive delays, power within 3x of the estimate *)
  let and2 = Tt.create 2 (fun m -> m = 3) in
  let analytic = Opt.optimize and2 in
  let spiced = Opt.optimize ~use_spice:true and2 in
  List.iter2
    (fun a s ->
      Alcotest.(check bool) "same method order" true
        (List.exists
           (fun s' -> s'.Opt.implementation.Opt.method_name = a.Opt.implementation.Opt.method_name)
           spiced);
      Alcotest.(check bool) "spice flag" true s.Opt.metrics.Opt.from_spice;
      let ratio = s.Opt.metrics.Opt.static_power /. Float.max 1e-18 a.Opt.metrics.Opt.static_power in
      Alcotest.(check bool)
        (Printf.sprintf "power within 3x (ratio %.2f)" ratio)
        true
        (ratio > 0.33 && ratio < 3.0))
    analytic spiced

let test_describe () =
  let ranked = Opt.optimize maj3 in
  match ranked with
  | e :: _ ->
    let s = Opt.describe e ~names:Lattice_boolfn.Sop.alpha_names in
    Alcotest.(check bool) "describe non-empty" true (String.length s > 40)
  | [] -> Alcotest.fail "no candidates"

(* --- Monte-Carlo --------------------------------------------------------- *)

module Mc = Lattice_flow.Monte_carlo

(* typical local mismatch: the XOR3 lattice should survive *)
let test_mc_nominal_yield () =
  let r =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3 ~samples:25
  in
  Alcotest.(check bool) (Printf.sprintf "yield %.2f >= 0.9" r.Mc.yield) true (r.Mc.yield >= 0.9);
  Alcotest.(check bool) "v_low near nominal" true
    (r.Mc.v_low_mean > 0.05 && r.Mc.v_low_mean < 0.35);
  Alcotest.(check int) "all outcomes recorded" 25 (Array.length r.Mc.outcomes)

let test_mc_zero_variation_is_nominal () =
  let r =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3
      ~variation:{ Mc.sigma_vth = 0.0; sigma_kp_rel = 0.0 } ~samples:3
  in
  Alcotest.(check (float 1e-9)) "yield 1.0" 1.0 r.Mc.yield;
  Alcotest.(check (float 1e-6)) "no spread" 0.0 r.Mc.v_low_std

let test_mc_extreme_variation_kills_yield () =
  let nominal =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3 ~samples:20
  in
  let extreme =
    Mc.run Lattice_synthesis.Library.xor3_3x3 ~target:Lattice_synthesis.Library.xor3 ~samples:20
      ~variation:{ Mc.sigma_vth = 0.4; sigma_kp_rel = 0.6 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "extreme %.2f < nominal %.2f" extreme.Mc.yield nominal.Mc.yield)
    true
    (extreme.Mc.yield < nominal.Mc.yield)

let test_mc_deterministic_seed () =
  let run () =
    Mc.run Lattice_synthesis.Library.maj3_2x3 ~target:(Tt.majority_n 3) ~samples:10 ~seed:7
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "same yield" a.Mc.yield b.Mc.yield;
  Alcotest.(check (float 1e-12)) "same mean" a.Mc.v_low_mean b.Mc.v_low_mean

let () =
  Alcotest.run "flow"
    [
      ( "monte_carlo",
        [
          Alcotest.test_case "nominal yield" `Slow test_mc_nominal_yield;
          Alcotest.test_case "zero variation" `Quick test_mc_zero_variation_is_nominal;
          Alcotest.test_case "extreme variation" `Slow test_mc_extreme_variation_kills_yield;
          Alcotest.test_case "deterministic seed" `Quick test_mc_deterministic_seed;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "candidates are valid" `Quick test_candidates_valid;
          Alcotest.test_case "multiple candidates" `Quick test_candidates_distinct;
          Alcotest.test_case "estimate sanity" `Quick test_estimate_sanity;
          Alcotest.test_case "estimate scaling" `Quick test_estimate_scales_with_rows;
          Alcotest.test_case "ranking" `Quick test_optimize_ranking;
          Alcotest.test_case "spec bounds" `Quick test_optimize_spec_bounds;
          Alcotest.test_case "spice evaluation" `Slow test_optimize_spice_agrees_in_order;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
    ]
