(* Tests for level-1 parameter extraction. *)

module D = Lattice_device
module Fit = Lattice_fit.Fit

let square_hfo2 = D.Device_model.make ~geometry:D.Geometry.square ~dielectric:D.Material.HfO2

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

let test_scenarios_shape () =
  let s1 = Fit.scenario1 square_hfo2 ~points:21 in
  let s2 = Fit.scenario2 square_hfo2 ~points:21 in
  Alcotest.(check int) "s1 points" 21 (Array.length s1.Fit.xs);
  Alcotest.(check int) "s2 points" 21 (Array.length s2.Fit.ys);
  (match s1.Fit.bias with
  | `Sweep_vgs vds -> check_close "s1 fixes VDS=5" 1e-12 5.0 vds
  | `Sweep_vds _ -> Alcotest.fail "scenario 1 sweeps VGS");
  match s2.Fit.bias with
  | `Sweep_vds vgs -> check_close "s2 fixes VGS=5" 1e-12 5.0 vgs
  | `Sweep_vgs _ -> Alcotest.fail "scenario 2 sweeps VDS"

let test_extract_recovers_model () =
  (* the generator is level-1 above threshold, so the fit must recover the
     compact model's parameters almost exactly *)
  let e = Fit.extract square_hfo2 in
  Alcotest.(check bool) "converged" true e.Fit.converged;
  check_close "kp" 1e-7 square_hfo2.D.Device_model.kp e.Fit.kp;
  check_close "vth" 1e-3 square_hfo2.D.Device_model.vth e.Fit.vth;
  check_close "lambda" 1e-4 square_hfo2.D.Device_model.lambda e.Fit.lambda;
  Alcotest.(check bool) "r2 ~ 1" true (e.Fit.r_squared > 0.99999)

let test_extract_with_noise () =
  (* multiplicative noise: parameters still recovered within a few % *)
  let rng = Random.State.make [| 99 |] in
  let noisy sc =
    {
      sc with
      Fit.ys =
        Array.map (fun y -> y *. (1.0 +. (0.02 *. (Random.State.float rng 2.0 -. 1.0)))) sc.Fit.ys;
    }
  in
  let scenarios = [ noisy (Fit.scenario1 square_hfo2 ~points:51); noisy (Fit.scenario2 square_hfo2 ~points:51) ] in
  let e = Fit.extract ~scenarios square_hfo2 in
  Alcotest.(check bool) "kp within 5%" true
    (Lattice_numerics.Stats.relative_error ~expected:square_hfo2.D.Device_model.kp e.Fit.kp < 0.05);
  Alcotest.(check bool) "vth within 50mV" true
    (Float.abs (e.Fit.vth -. square_hfo2.D.Device_model.vth) < 0.05)

let test_types_a_b () =
  let e = Fit.extract square_hfo2 in
  check_close "type A length" 1e-12 0.35e-6 e.Fit.type_a.Lattice_mosfet.Level1.l;
  check_close "type B length" 1e-12 0.5e-6 e.Fit.type_b.Lattice_mosfet.Level1.l;
  check_close "same kp" 1e-15 e.Fit.type_a.Lattice_mosfet.Level1.kp e.Fit.type_b.Lattice_mosfet.Level1.kp

let test_composite_structure () =
  (* the DSSS composite is 2 type-A + 1 type-B channel *)
  let g = D.Geometry.square in
  let i =
    Fit.composite_current ~geometry:g ~kp:1e-5 ~vth:0.2 ~lambda:0.0 ~vgs:5.0 ~vds:5.0
  in
  let expect =
    let ids l =
      let p = { Lattice_mosfet.Level1.kp = 1e-5; vth = 0.2; lambda = 0.0; w = g.D.Geometry.channel_width; l } in
      Lattice_mosfet.Level1.ids p ~vgs:5.0 ~vds:5.0
    in
    (2.0 *. ids 0.35e-6) +. ids 0.5e-6
  in
  check_close "composite" 1e-12 expect i

let test_predict_matches_data () =
  let e = Fit.extract square_hfo2 in
  let sc = Fit.scenario2 square_hfo2 ~points:21 in
  let pred = Fit.predict e ~geometry:square_hfo2.D.Device_model.geometry sc in
  let rmse = Lattice_numerics.Stats.rmse sc.Fit.ys pred in
  Alcotest.(check bool) "prediction matches data" true (rmse < 1e-6)

let test_fit_cross_device () =
  (* the extraction also works for the cross geometry *)
  let cross = D.Device_model.make ~geometry:D.Geometry.cross ~dielectric:D.Material.HfO2 in
  let e = Fit.extract cross in
  Alcotest.(check bool) "converged" true e.Fit.converged;
  check_close "cross vth" 5e-3 cross.D.Device_model.vth e.Fit.vth

let () =
  Alcotest.run "fitting"
    [
      ( "fit",
        [
          Alcotest.test_case "scenario construction" `Quick test_scenarios_shape;
          Alcotest.test_case "recovers model parameters" `Quick test_extract_recovers_model;
          Alcotest.test_case "robust to noise" `Quick test_extract_with_noise;
          Alcotest.test_case "type A / type B params" `Quick test_types_a_b;
          Alcotest.test_case "composite structure" `Quick test_composite_structure;
          Alcotest.test_case "predict" `Quick test_predict_matches_data;
          Alcotest.test_case "cross device" `Quick test_fit_cross_device;
        ] );
    ]
