(* Tests for the level-1 MOSFET equations. *)

module L1 = Lattice_mosfet.Level1

let p = { L1.kp = 2e-5; vth = 0.5; lambda = 0.02; w = 700e-9; l = 350e-9 }

let check_close msg tol a b = Alcotest.(check (float tol)) msg a b

let test_regions () =
  Alcotest.(check bool) "cutoff" true (L1.region p ~vgs:0.3 ~vds:1.0 = L1.Cutoff);
  Alcotest.(check bool) "cutoff at vth" true (L1.region p ~vgs:0.5 ~vds:1.0 = L1.Cutoff);
  Alcotest.(check bool) "triode" true (L1.region p ~vgs:2.0 ~vds:1.0 = L1.Triode);
  Alcotest.(check bool) "saturation" true (L1.region p ~vgs:1.0 ~vds:1.0 = L1.Saturation);
  Alcotest.(check bool) "boundary is triode" true (L1.region p ~vgs:1.5 ~vds:1.0 = L1.Triode)

let test_cutoff_zero () =
  check_close "no current below vth" 0.0 0.0 (L1.ids p ~vgs:0.4 ~vds:3.0)

let test_known_values () =
  (* beta = kp W/L = 2e-5 * 2 = 4e-5 *)
  check_close "beta" 1e-12 4e-5 (L1.beta p);
  (* saturation: 0.5 * beta * vov^2 * (1 + lambda vds) *)
  let vgs = 1.5 and vds = 2.0 in
  let expected = 0.5 *. 4e-5 *. 1.0 *. (1.0 +. 0.04) in
  check_close "sat current" 1e-12 expected (L1.ids p ~vgs ~vds);
  (* triode at vds = 0.5, vov = 1 *)
  let expected_triode = 4e-5 *. ((1.0 *. 0.5) -. 0.125) *. 1.01 in
  check_close "triode current" 1e-12 expected_triode (L1.ids p ~vgs:1.5 ~vds:0.5)

let test_continuity_at_vdsat () =
  (* triode and saturation formulas agree at vds = vov *)
  let vgs = 2.1 in
  let vov = vgs -. p.L1.vth in
  let below = L1.ids p ~vgs ~vds:(vov -. 1e-9) in
  let above = L1.ids p ~vgs ~vds:(vov +. 1e-9) in
  check_close "continuity" 1e-10 below above

let test_monotonicity () =
  (* ids non-decreasing in vgs and in vds *)
  let prev = ref (-1.0) in
  for i = 0 to 50 do
    let vgs = float_of_int i /. 10.0 in
    let ids = L1.ids p ~vgs ~vds:5.0 in
    if ids < !prev -. 1e-15 then Alcotest.failf "not monotone in vgs at %.2f" vgs;
    prev := ids
  done;
  prev := -1.0;
  for i = 0 to 50 do
    let vds = float_of_int i /. 10.0 in
    let ids = L1.ids p ~vgs:3.0 ~vds in
    if ids < !prev -. 1e-15 then Alcotest.failf "not monotone in vds at %.2f" vds;
    prev := ids
  done

let test_ids_signed_antisymmetry () =
  (* swapping drain and source negates the current *)
  List.iter
    (fun (vg, vd, vs) ->
      let fwd = L1.ids_signed p ~vg ~vd ~vs in
      let rev = L1.ids_signed p ~vg ~vd:vs ~vs:vd in
      check_close (Printf.sprintf "antisym %g %g %g" vg vd vs) 1e-15 fwd (-.rev))
    [ (2.0, 1.0, 0.0); (2.0, 0.0, 1.0); (1.0, 0.3, 0.7); (3.0, 2.0, 2.0) ]

let test_ids_signed_source_reference () =
  (* with vd < vs the gate drive references the lower terminal *)
  let i = L1.ids_signed p ~vg:1.0 ~vd:0.0 ~vs:5.0 in
  (* effective vgs = 1.0 - 0.0 = 1.0 > vth: conducting, negative at vd *)
  Alcotest.(check bool) "reverse conduction" true (i < 0.0)

let numeric_derivative f x =
  let h = 1e-6 in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let test_gm_matches_numeric () =
  List.iter
    (fun (vgs, vds) ->
      let analytic = L1.gm p ~vgs ~vds in
      let numeric = numeric_derivative (fun vgs -> L1.ids p ~vgs ~vds) vgs in
      check_close (Printf.sprintf "gm at %g %g" vgs vds) 1e-9 numeric analytic)
    [ (1.5, 0.5); (1.5, 3.0); (2.5, 1.0); (3.0, 0.2) ]

let test_gds_matches_numeric () =
  List.iter
    (fun (vgs, vds) ->
      let analytic = L1.gds p ~vgs ~vds in
      let numeric = numeric_derivative (fun vds -> L1.ids p ~vgs ~vds) vds in
      check_close (Printf.sprintf "gds at %g %g" vgs vds) 1e-9 numeric analytic)
    [ (1.5, 0.5); (1.5, 3.0); (2.5, 1.0); (3.0, 0.2) ]

let test_negative_vds_rejected () =
  Alcotest.check_raises "vds < 0" (Invalid_argument "Level1: vds must be >= 0 (use ids_signed)")
    (fun () -> ignore (L1.ids p ~vgs:1.0 ~vds:(-0.1)))

let test_depletion_device () =
  (* negative vth conducts at vgs = 0 *)
  let dep = { p with L1.vth = -0.57 } in
  Alcotest.(check bool) "on at vgs=0" true (L1.ids dep ~vgs:0.0 ~vds:1.0 > 0.0);
  Alcotest.(check bool) "off below vth" true (L1.ids dep ~vgs:(-1.0) ~vds:1.0 = 0.0)

let test_vdsat () =
  check_close "vdsat" 1e-12 1.5 (L1.vdsat p ~vgs:2.0);
  check_close "vdsat clamped" 1e-12 0.0 (L1.vdsat p ~vgs:0.1)

let prop_ids_nonnegative =
  QCheck2.Test.make ~name:"ids >= 0 for vds >= 0" ~count:500
    QCheck2.Gen.(pair (float_range (-2.0) 6.0) (float_range 0.0 6.0))
    (fun (vgs, vds) -> L1.ids p ~vgs ~vds >= 0.0)

let prop_gm_nonnegative =
  QCheck2.Test.make ~name:"gm >= 0" ~count:500
    QCheck2.Gen.(pair (float_range (-2.0) 6.0) (float_range 0.0 6.0))
    (fun (vgs, vds) -> L1.gm p ~vgs ~vds >= 0.0)

(* --- Level 3 ---------------------------------------------------------- *)

module L3 = Lattice_mosfet.Level3
module Model = Lattice_mosfet.Model

let test_level3_reduces_to_level1 () =
  (* theta = 0 and a huge vmax recover level 1 *)
  let p3 = L3.of_level1 ~theta:0.0 ~vmax:1e12 ~mu:0.05 p in
  List.iter
    (fun (vgs, vds) ->
      check_close
        (Printf.sprintf "agree at %g %g" vgs vds)
        (1e-6 *. Float.max 1e-9 (L1.ids p ~vgs ~vds))
        (L1.ids p ~vgs ~vds) (L3.ids p3 ~vgs ~vds))
    [ (0.2, 1.0); (1.0, 0.3); (2.0, 3.0); (3.0, 0.5); (5.0, 5.0) ]

let test_level3_reduces_current () =
  (* short-channel effects only ever lower the current *)
  let p3 = L3.of_level1 ~theta:0.3 ~vmax:5e4 p in
  List.iter
    (fun (vgs, vds) ->
      Alcotest.(check bool)
        (Printf.sprintf "lower at %g %g" vgs vds)
        true
        (L3.ids p3 ~vgs ~vds <= L1.ids p ~vgs ~vds +. 1e-15))
    [ (1.0, 0.5); (2.0, 2.0); (3.0, 5.0); (5.0, 1.0) ]

let test_level3_vdsat_capped () =
  let p3 = L3.of_level1 ~theta:0.1 ~vmax:1e5 ~mu:0.05 p in
  let vgs = 3.0 in
  let vov = vgs -. p.L1.vth in
  Alcotest.(check bool) "vdsat below vov" true (L3.vdsat p3 ~vgs < vov);
  Alcotest.(check bool) "vdsat positive" true (L3.vdsat p3 ~vgs > 0.0);
  check_close "vdsat formula" 1e-9
    (vov *. p3.L3.vc /. (vov +. p3.L3.vc))
    (L3.vdsat p3 ~vgs)

let test_level3_continuity () =
  let p3 = L3.of_level1 ~theta:0.2 ~vmax:8e4 p in
  let vgs = 2.5 in
  let vsat = L3.vdsat p3 ~vgs in
  let below = L3.ids p3 ~vgs ~vds:(vsat -. 1e-9) in
  let above = L3.ids p3 ~vgs ~vds:(vsat +. 1e-9) in
  check_close "continuous at vdsat" 1e-9 below above

let test_level3_monotone () =
  let p3 = L3.of_level1 ~theta:0.15 ~vmax:1e5 p in
  let prev = ref (-1.0) in
  for i = 0 to 50 do
    let vds = float_of_int i /. 10.0 in
    let ids = L3.ids p3 ~vgs:3.0 ~vds in
    if ids < !prev -. 1e-15 then Alcotest.failf "level3 not monotone in vds at %.2f" vds;
    prev := ids
  done

let test_level3_validation () =
  Alcotest.(check bool) "negative theta rejected" true
    (match L3.of_level1 ~theta:(-0.1) p with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "zero vmax rejected" true
    (match L3.of_level1 ~vmax:0.0 p with exception Invalid_argument _ -> true | _ -> false)

let test_model_dispatch () =
  let m1 = Model.L1 p in
  let m3 = Model.L3 (L3.of_level1 ~theta:0.0 ~vmax:1e12 ~mu:0.05 p) in
  check_close "same vth" 1e-12 (Model.vth m1) (Model.vth m3);
  check_close "same W/L" 1e-12 (Model.w_over_l m1) (Model.w_over_l m3);
  check_close "ids agrees" 1e-9 (Model.ids m1 ~vgs:2.0 ~vds:1.0) (Model.ids m3 ~vgs:2.0 ~vds:1.0);
  Alcotest.(check bool) "on conductance positive" true (Model.on_conductance m1 ~vdd:1.2 > 0.0)

let test_model_gm_numeric () =
  let m3 = Model.L3 (L3.of_level1 ~theta:0.2 ~vmax:8e4 p) in
  let analytic = Model.gm m3 ~vgs:2.0 ~vds:1.0 in
  let h = 1e-5 in
  let numeric =
    (Model.ids m3 ~vgs:(2.0 +. h) ~vds:1.0 -. Model.ids m3 ~vgs:(2.0 -. h) ~vds:1.0) /. (2.0 *. h)
  in
  check_close "level3 gm consistent" (Float.abs numeric *. 1e-2) numeric analytic

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "mosfet"
    [
      ( "level1",
        [
          Alcotest.test_case "region classification" `Quick test_regions;
          Alcotest.test_case "cutoff" `Quick test_cutoff_zero;
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "continuity at vdsat" `Quick test_continuity_at_vdsat;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "signed antisymmetry" `Quick test_ids_signed_antisymmetry;
          Alcotest.test_case "source reference on reversal" `Quick test_ids_signed_source_reference;
          Alcotest.test_case "gm vs numeric derivative" `Quick test_gm_matches_numeric;
          Alcotest.test_case "gds vs numeric derivative" `Quick test_gds_matches_numeric;
          Alcotest.test_case "negative vds rejected" `Quick test_negative_vds_rejected;
          Alcotest.test_case "depletion device" `Quick test_depletion_device;
          Alcotest.test_case "vdsat" `Quick test_vdsat;
          qc prop_ids_nonnegative;
          qc prop_gm_nonnegative;
        ] );
      ( "level3",
        [
          Alcotest.test_case "reduces to level 1" `Quick test_level3_reduces_to_level1;
          Alcotest.test_case "short-channel lowers current" `Quick test_level3_reduces_current;
          Alcotest.test_case "vdsat capped" `Quick test_level3_vdsat_capped;
          Alcotest.test_case "continuity at vdsat" `Quick test_level3_continuity;
          Alcotest.test_case "monotone in vds" `Quick test_level3_monotone;
          Alcotest.test_case "parameter validation" `Quick test_level3_validation;
          Alcotest.test_case "model dispatch" `Quick test_model_dispatch;
          Alcotest.test_case "level3 gm numeric consistency" `Quick test_model_gm_numeric;
        ] );
    ]
