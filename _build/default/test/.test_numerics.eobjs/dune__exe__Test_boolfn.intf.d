test/test_boolfn.mli:
