test/test_mosfet.ml: Alcotest Float Lattice_mosfet List Printf QCheck2 QCheck_alcotest
