test/test_flow.ml: Alcotest Array Float Lattice_boolfn Lattice_core Lattice_flow Lattice_synthesis List Printf String
