test/test_synthesis.ml: Alcotest Bool Lattice_boolfn Lattice_core Lattice_synthesis List QCheck2 QCheck_alcotest Random
