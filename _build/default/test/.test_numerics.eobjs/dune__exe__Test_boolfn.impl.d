test/test_boolfn.ml: Alcotest Array Bool Fun Int Lattice_boolfn List Printf QCheck2 QCheck_alcotest
