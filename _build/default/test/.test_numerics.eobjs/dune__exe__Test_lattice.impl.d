test/test_lattice.ml: Alcotest Array Bool Bytes Hashtbl Int Lattice_boolfn Lattice_core Lattice_synthesis List Printf QCheck2 QCheck_alcotest String
