test/test_fitting.ml: Alcotest Array Float Lattice_device Lattice_fit Lattice_mosfet Lattice_numerics Random
