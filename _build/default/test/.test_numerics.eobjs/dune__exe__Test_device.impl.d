test/test_device.ml: Alcotest Array Float Lattice_device List Printf String
