test/test_mosfet.mli:
