test/test_experiments.ml: Alcotest Array Float Lattice_device Lattice_experiments Lattice_fit Lattice_spice List Printf String
