test/test_numerics.ml: Alcotest Array Float Fun Lattice_numerics List Printf QCheck2 QCheck_alcotest Random
