test/test_spice.ml: Alcotest Array Bool Float Lattice_core Lattice_mosfet Lattice_spice Lattice_synthesis List Printf QCheck2 QCheck_alcotest String
